"""Unit tests for the sharded service and the async gateway."""

from __future__ import annotations

import asyncio
import pickle

import numpy as np
import pytest

from repro import (
    Dataset,
    ImmutableRegionEngine,
    InvertedIndex,
    Mutation,
    Query,
    ShardedIndex,
    ShardedQueryService,
)
from repro.core.distributed import worker_payload
from repro.errors import ValidationError
from repro.service import AsyncGateway, TokenBucket
from repro.service.gateway import run_self_test


def make_dataset(n=60, m=6, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


def make_service(**kwargs):
    kwargs.setdefault("n_shards", 3)
    return ShardedQueryService(make_dataset(), **kwargs)


QUERY = Query([0, 2, 4], [0.7, 0.3, 0.5])


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = lambda: clock.t
        clock.t = 0.0
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.t = 1.0
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_capacity_capped_at_burst(self):
        clock = lambda: clock.t
        clock.t = 0.0
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.t = 100.0  # long idle must not accumulate beyond burst
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire()

    def test_parameters_validated(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValidationError):
            TokenBucket(rate=1.0, burst=0.5)


class TestShardedQueryService:
    def test_matches_unsharded_oracle(self):
        service = make_service()
        try:
            computation = service.execute(QUERY, 5)
            oracle = ImmutableRegionEngine(
                InvertedIndex(make_dataset()), method="cpt"
            ).compute_many([QUERY], 5, topk_mode="matmul")[0]
            assert computation.result.ids == oracle.result.ids
            for dim in oracle.sequences:
                assert computation.immutable_interval(
                    dim
                ) == oracle.immutable_interval(dim)
        finally:
            service.close()

    def test_engines_share_one_transport(self):
        service = make_service()
        try:
            cpt = service.engine_for("cpt")
            scan = service.engine_for("scan")
            assert cpt is service.engine_for("cpt")
            assert cpt._transport is scan._transport
            assert cpt._transport is service._shard_transport
        finally:
            service.close()

    def test_region_hit_short_circuits_before_any_shard(self):
        service = make_service()
        try:
            anchor = service.execute(QUERY, 5)
            lower, upper = anchor.immutable_interval(0)
            weight = QUERY.weight_of(0)
            inside = (weight + upper) / 2 if upper > weight else (lower + weight) / 2
            perturbed = QUERY.with_weight(0, inside)

            touched = []
            transport = service._shard_transport
            original_call, original_map = transport.call, transport.map
            transport.call = lambda *a: (touched.append(a), original_call(*a))[1]
            transport.map = lambda calls: (touched.append(calls), original_map(calls))[1]
            computation, tier = service.execute_tiered(perturbed, 5)
            assert tier == "region"
            assert touched == []  # served before the shards existed, as it were
            assert computation.result.ids == anchor.result.ids
        finally:
            service.close()

    def test_run_batch_windows_through_distributed_engine(self):
        service = make_service()
        try:
            queries = [QUERY, Query([1, 3], [0.9, 0.2]), QUERY]
            result = service.run_batch(queries, 5)
            assert len(result) == 3
            assert result[0] is result[2]  # single-flight duplicate
            assert result.stats.n_queries == 3
        finally:
            service.close()

    def test_run_stream_serves_drag_from_regions(self):
        service = make_service()
        try:
            anchor = service.execute(QUERY, 5)
            lower, upper = anchor.immutable_interval(0)
            weight = QUERY.weight_of(0)
            inside = (weight + upper) / 2 if upper > weight else (lower + weight) / 2
            result = service.run_stream([QUERY, QUERY.with_weight(0, inside)], 5)
            assert result.stats.n_region_hits == 1
        finally:
            service.close()

    def test_apply_mutations_routes_and_invalidates(self):
        service = make_service()
        try:
            service.execute(QUERY, 5)
            stats = service.apply_mutations(
                [Mutation.update(1, 0, 0.95), Mutation.insert([0, 2], [0.4, 0.3])]
            )
            assert stats.mutation_batches == 1
            assert stats.mutations_applied == 2
            assert stats.regions_kept + stats.regions_evicted >= 1
            # Only the touched shards advanced; parity with a fresh oracle.
            epochs = service.sharded.shard_epochs
            assert epochs[0] == 1 and epochs[-1] == 1 and epochs[1] == 0
            post = service.execute(QUERY, 5)
            oracle = ImmutableRegionEngine(
                InvertedIndex(service.index.dataset)
            ).compute_many([QUERY], 5, topk_mode="matmul")[0]
            assert post.result.ids == oracle.result.ids
            # A cache entry that survived the delta test keeps its original
            # epoch (the regions are proven unchanged); the index moved on.
            assert service.index.epoch == 1
        finally:
            service.close()

    @pytest.mark.parametrize("shard_executor", ["thread", "process"])
    def test_pooled_shard_executors_match_sequential(self, shard_executor):
        sequential = make_service()
        pooled = make_service(shard_executor=shard_executor, n_shards=2)
        try:
            ref = sequential.execute(QUERY, 5)
            got = pooled.execute(QUERY, 5)
            assert ref.result.ids == got.result.ids
            for dim in ref.sequences:
                assert ref.immutable_interval(dim) == got.immutable_interval(dim)
        finally:
            sequential.close()
            pooled.close()


class TestWorkerPayload:
    def test_process_worker_payload_scales_with_shard_not_dataset(self):
        """Each shard worker ships only its own rows (regression: the
        window-pool workers pickle the *full* dataset per worker)."""
        data = make_dataset(n=2_000, m=8, seed=3)
        sharded = ShardedIndex(data, 4)
        full = len(pickle.dumps(data))
        shard_payloads = [
            len(pickle.dumps(worker_payload(shard))) for shard in sharded.shards
        ]
        assert max(shard_payloads) < full / 2  # ~n/4 each, not n
        assert sum(shard_payloads) < full * 1.25  # overhead stays marginal

    def test_payload_halves_when_shards_double(self):
        data = make_dataset(n=2_000, m=8, seed=3)
        two = max(
            len(pickle.dumps(worker_payload(s))) for s in ShardedIndex(data, 2).shards
        )
        eight = max(
            len(pickle.dumps(worker_payload(s))) for s in ShardedIndex(data, 8).shards
        )
        assert eight < two / 2


class TestAsyncGateway:
    def run(self, coro):
        return asyncio.run(coro)

    def test_ping_and_unknown_op(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            assert self.run(gateway.handle({"op": "ping"}))["ok"]
            response = self.run(gateway.handle({"op": "nope"}))
            assert not response["ok"] and response["error"] == "bad_request"
        finally:
            service.close()

    def test_query_response_shape(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            response = self.run(
                gateway.handle(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                )
            )
            assert response["ok"] and response["tier"] == "computed"
            oracle = ImmutableRegionEngine(
                InvertedIndex(make_dataset())
            ).compute_many([QUERY], 5, topk_mode="matmul")[0]
            assert [tid for tid, _ in response["result"]] == oracle.result.ids
            for dim in oracle.sequences:
                assert response["regions"][str(dim)]["interval"] == list(
                    oracle.immutable_interval(dim)
                )
            # A second identical query is an exact cache hit.
            repeat = self.run(
                gateway.handle(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                )
            )
            assert repeat["tier"] == "exact"
            assert gateway.stats.n_exact_hits == 1
        finally:
            service.close()

    def test_malformed_query_is_an_error_response(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            response = self.run(
                gateway.handle({"op": "query", "dims": [0], "weights": [2.0]})
            )
            assert not response["ok"] and response["error"] == "query_error"
            assert gateway.n_errors == 1
        finally:
            service.close()

    def test_rate_limiter_sheds(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5, rate=1e-9, burst=1.0)
        try:
            first = self.run(
                gateway.handle(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                )
            )
            assert first["ok"]
            second = self.run(gateway.handle({"op": "query", "dims": [0], "weights": [0.5]}))
            assert second["error"] == "rate_limited"
            assert gateway.n_rejected_rate == 1
        finally:
            service.close()

    def test_overload_sheds(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5, max_concurrent=1, max_queue=0)
        try:
            gateway._pending = 1  # simulate a stuck in-flight request
            response = self.run(
                gateway.handle({"op": "query", "dims": [0], "weights": [0.5]})
            )
            assert response["error"] == "overloaded"
            assert gateway.n_rejected_load == 1
        finally:
            service.close()

    def test_mutate_op(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            response = self.run(
                gateway.handle(
                    {
                        "op": "mutate",
                        "mutations": [
                            {"kind": "update", "id": 1, "dim": 0, "value": 0.9},
                            {"kind": "delete", "id": 2},
                            {"kind": "insert", "dims": [0, 1], "values": [0.5, 0.5]},
                        ],
                    }
                )
            )
            assert response["ok"] and response["applied"] == 3
            assert response["epoch"] == 1
            assert gateway.stats.mutations_applied == 3
        finally:
            service.close()

    def test_stats_snapshot_includes_empty_tiers(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            snapshot = self.run(gateway.handle({"op": "stats"}))["stats"]
            assert set(snapshot["tiers"]) == {"exact", "region", "computed"}
            assert snapshot["tiers"]["region"]["n"] == 0.0
        finally:
            service.close()


class TestServerRoundTrip:
    def test_json_lines_over_tcp(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            responses = run_self_test(
                gateway,
                [
                    {"op": "ping"},
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]},
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]},
                    "not an object",
                    {"op": "stats"},
                ],
            )
            assert responses[0]["ok"]
            assert responses[1]["tier"] == "computed"
            assert responses[2]["tier"] == "exact"
            assert responses[3]["error"] == "bad_request"
            snapshot = responses[4]["stats"]
            assert snapshot["n_queries"] == 2 and snapshot["n_exact_hits"] == 1
        finally:
            service.close()


def test_cli_self_test(capsys):
    from repro.cli import main

    code = main(
        [
            "serve",
            "--family",
            "kb",
            "--shards",
            "3",
            "--self-test",
            "2",
            "--k",
            "5",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "self-test: 2 queries over 3 shard(s)" in out
