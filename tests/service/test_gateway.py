"""Unit tests for the sharded service and the async gateway."""

from __future__ import annotations

import asyncio
import json
import pickle
import time

import numpy as np
import pytest

from repro import (
    Dataset,
    ImmutableRegionEngine,
    InvertedIndex,
    Mutation,
    Query,
    ShardedIndex,
    ShardedQueryService,
)
from repro.core.distributed import worker_payload
from repro.core.supervision import SupervisionPolicy
from repro.errors import ValidationError
from repro.service import AsyncGateway, FaultPlan, FaultSpec, TokenBucket
from repro.service.gateway import run_self_test


def make_dataset(n=60, m=6, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


def make_service(**kwargs):
    kwargs.setdefault("n_shards", 3)
    return ShardedQueryService(make_dataset(), **kwargs)


QUERY = Query([0, 2, 4], [0.7, 0.3, 0.5])


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = lambda: clock.t
        clock.t = 0.0
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.t = 1.0
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_capacity_capped_at_burst(self):
        clock = lambda: clock.t
        clock.t = 0.0
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.t = 100.0  # long idle must not accumulate beyond burst
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire()

    def test_parameters_validated(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValidationError):
            TokenBucket(rate=1.0, burst=0.5)


class TestShardedQueryService:
    def test_matches_unsharded_oracle(self):
        service = make_service()
        try:
            computation = service.execute(QUERY, 5)
            oracle = ImmutableRegionEngine(
                InvertedIndex(make_dataset()), method="cpt"
            ).compute_many([QUERY], 5, topk_mode="matmul")[0]
            assert computation.result.ids == oracle.result.ids
            for dim in oracle.sequences:
                assert computation.immutable_interval(
                    dim
                ) == oracle.immutable_interval(dim)
        finally:
            service.close()

    def test_engines_share_one_transport(self):
        service = make_service()
        try:
            cpt = service.engine_for("cpt")
            scan = service.engine_for("scan")
            assert cpt is service.engine_for("cpt")
            assert cpt._transport is scan._transport
            assert cpt._transport is service._shard_transport
        finally:
            service.close()

    def test_region_hit_short_circuits_before_any_shard(self):
        service = make_service()
        try:
            anchor = service.execute(QUERY, 5)
            lower, upper = anchor.immutable_interval(0)
            weight = QUERY.weight_of(0)
            inside = (weight + upper) / 2 if upper > weight else (lower + weight) / 2
            perturbed = QUERY.with_weight(0, inside)

            touched = []
            transport = service._shard_transport
            original_call, original_map = transport.call, transport.map
            transport.call = lambda *a: (touched.append(a), original_call(*a))[1]
            transport.map = lambda calls: (touched.append(calls), original_map(calls))[1]
            computation, tier = service.execute_tiered(perturbed, 5)
            assert tier == "region"
            assert touched == []  # served before the shards existed, as it were
            assert computation.result.ids == anchor.result.ids
        finally:
            service.close()

    def test_run_batch_windows_through_distributed_engine(self):
        service = make_service()
        try:
            queries = [QUERY, Query([1, 3], [0.9, 0.2]), QUERY]
            result = service.run_batch(queries, 5)
            assert len(result) == 3
            assert result[0] is result[2]  # single-flight duplicate
            assert result.stats.n_queries == 3
        finally:
            service.close()

    def test_run_stream_serves_drag_from_regions(self):
        service = make_service()
        try:
            anchor = service.execute(QUERY, 5)
            lower, upper = anchor.immutable_interval(0)
            weight = QUERY.weight_of(0)
            inside = (weight + upper) / 2 if upper > weight else (lower + weight) / 2
            result = service.run_stream([QUERY, QUERY.with_weight(0, inside)], 5)
            assert result.stats.n_region_hits == 1
        finally:
            service.close()

    def test_apply_mutations_routes_and_invalidates(self):
        service = make_service()
        try:
            service.execute(QUERY, 5)
            stats = service.apply_mutations(
                [Mutation.update(1, 0, 0.95), Mutation.insert([0, 2], [0.4, 0.3])]
            )
            assert stats.mutation_batches == 1
            assert stats.mutations_applied == 2
            assert stats.regions_kept + stats.regions_evicted >= 1
            # Only the touched shards advanced; parity with a fresh oracle.
            epochs = service.sharded.shard_epochs
            assert epochs[0] == 1 and epochs[-1] == 1 and epochs[1] == 0
            post = service.execute(QUERY, 5)
            oracle = ImmutableRegionEngine(
                InvertedIndex(service.index.dataset)
            ).compute_many([QUERY], 5, topk_mode="matmul")[0]
            assert post.result.ids == oracle.result.ids
            # A cache entry that survived the delta test keeps its original
            # epoch (the regions are proven unchanged); the index moved on.
            assert service.index.epoch == 1
        finally:
            service.close()

    @pytest.mark.parametrize("shard_executor", ["thread", "process"])
    def test_pooled_shard_executors_match_sequential(self, shard_executor):
        sequential = make_service()
        pooled = make_service(shard_executor=shard_executor, n_shards=2)
        try:
            ref = sequential.execute(QUERY, 5)
            got = pooled.execute(QUERY, 5)
            assert ref.result.ids == got.result.ids
            for dim in ref.sequences:
                assert ref.immutable_interval(dim) == got.immutable_interval(dim)
        finally:
            sequential.close()
            pooled.close()


class TestWorkerPayload:
    def test_process_worker_payload_scales_with_shard_not_dataset(self):
        """Each shard worker ships only its own rows (regression: the
        window-pool workers pickle the *full* dataset per worker)."""
        data = make_dataset(n=2_000, m=8, seed=3)
        sharded = ShardedIndex(data, 4)
        full = len(pickle.dumps(data))
        shard_payloads = [
            len(pickle.dumps(worker_payload(shard))) for shard in sharded.shards
        ]
        assert max(shard_payloads) < full / 2  # ~n/4 each, not n
        assert sum(shard_payloads) < full * 1.25  # overhead stays marginal

    def test_payload_halves_when_shards_double(self):
        data = make_dataset(n=2_000, m=8, seed=3)
        two = max(
            len(pickle.dumps(worker_payload(s))) for s in ShardedIndex(data, 2).shards
        )
        eight = max(
            len(pickle.dumps(worker_payload(s))) for s in ShardedIndex(data, 8).shards
        )
        assert eight < two / 2


class TestAsyncGateway:
    def run(self, coro):
        return asyncio.run(coro)

    def test_ping_and_unknown_op(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            assert self.run(gateway.handle({"op": "ping"}))["ok"]
            response = self.run(gateway.handle({"op": "nope"}))
            assert not response["ok"] and response["error"] == "bad_request"
        finally:
            service.close()

    def test_query_response_shape(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            response = self.run(
                gateway.handle(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                )
            )
            assert response["ok"] and response["tier"] == "computed"
            oracle = ImmutableRegionEngine(
                InvertedIndex(make_dataset())
            ).compute_many([QUERY], 5, topk_mode="matmul")[0]
            assert [tid for tid, _ in response["result"]] == oracle.result.ids
            for dim in oracle.sequences:
                assert response["regions"][str(dim)]["interval"] == list(
                    oracle.immutable_interval(dim)
                )
            # A second identical query is an exact cache hit.
            repeat = self.run(
                gateway.handle(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                )
            )
            assert repeat["tier"] == "exact"
            assert gateway.stats.n_exact_hits == 1
        finally:
            service.close()

    def test_malformed_query_is_an_error_response(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            response = self.run(
                gateway.handle({"op": "query", "dims": [0], "weights": [2.0]})
            )
            assert not response["ok"] and response["error"] == "query_error"
            assert gateway.n_errors == 1
        finally:
            service.close()

    def test_rate_limiter_sheds(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5, rate=1e-9, burst=1.0)
        try:
            first = self.run(
                gateway.handle(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                )
            )
            assert first["ok"]
            second = self.run(gateway.handle({"op": "query", "dims": [0], "weights": [0.5]}))
            assert second["error"] == "rate_limited"
            assert gateway.n_rejected_rate == 1
        finally:
            service.close()

    def test_overload_sheds(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5, max_concurrent=1, max_queue=0)
        try:
            gateway._pending = 1  # simulate a stuck in-flight request
            response = self.run(
                gateway.handle({"op": "query", "dims": [0], "weights": [0.5]})
            )
            assert response["error"] == "overloaded"
            assert gateway.n_rejected_load == 1
        finally:
            service.close()

    def test_mutate_op(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            response = self.run(
                gateway.handle(
                    {
                        "op": "mutate",
                        "mutations": [
                            {"kind": "update", "id": 1, "dim": 0, "value": 0.9},
                            {"kind": "delete", "id": 2},
                            {"kind": "insert", "dims": [0, 1], "values": [0.5, 0.5]},
                        ],
                    }
                )
            )
            assert response["ok"] and response["applied"] == 3
            assert response["epoch"] == 1
            assert gateway.stats.mutations_applied == 3
        finally:
            service.close()

    def test_stats_snapshot_includes_empty_tiers(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            snapshot = self.run(gateway.handle({"op": "stats"}))["stats"]
            assert set(snapshot["tiers"]) == {"exact", "region", "computed"}
            assert snapshot["tiers"]["region"]["n"] == 0.0
        finally:
            service.close()

    def test_error_replies_carry_stable_codes(self):
        """Every error reply has a ``code`` from the stable taxonomy
        alongside the legacy ``error`` string."""
        service = make_service()
        gateway = AsyncGateway(service, k=5, rate=1e-9, burst=1.0)
        try:
            unknown = self.run(gateway.handle({"op": "nope"}))
            assert unknown["code"] == "BAD_REQUEST"
            malformed = self.run(
                gateway.handle({"op": "query", "dims": [0], "weights": [2.0]})
            )
            assert malformed["code"] == "BAD_REQUEST"
            assert malformed["error"] == "query_error"
            self.run(
                gateway.handle(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                )
            )
            shed = self.run(
                gateway.handle({"op": "query", "dims": [0], "weights": [0.5]})
            )
            assert shed["code"] == "OVERLOADED" and shed["error"] == "rate_limited"
        finally:
            service.close()

    def test_deadline_exceeded_reply_is_structured(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            reply = self.run(
                gateway.handle(
                    {
                        "op": "query",
                        "dims": [0, 2, 4],
                        "weights": [0.7, 0.3, 0.5],
                        "deadline_ms": 1e-6,
                    }
                )
            )
            assert reply["code"] == "DEADLINE_EXCEEDED"
            assert reply["error"] == "deadline_exceeded"
            assert reply["budget_ms"] >= 0 and reply["elapsed_ms"] >= 0
            assert gateway.stats.deadline_hits == 1
            bad = self.run(
                gateway.handle(
                    {"op": "query", "dims": [0], "weights": [0.5], "deadline_ms": "x"}
                )
            )
            assert bad["code"] == "BAD_REQUEST"
        finally:
            service.close()

    def test_default_deadline_applies_to_bare_requests(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5, default_deadline_ms=1e-6)
        try:
            reply = self.run(
                gateway.handle(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                )
            )
            assert reply["code"] == "DEADLINE_EXCEEDED"
        finally:
            service.close()

    def test_stats_snapshot_surfaces_failure_counters(self):
        plan = FaultPlan([FaultSpec("crash", 0, 0)])
        service = make_service(
            supervision=SupervisionPolicy(max_retries=1, backoff_base=0.0),
            fault_plan=plan,
        )
        gateway = AsyncGateway(service, k=5)
        try:
            reply = self.run(
                gateway.handle(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                )
            )
            assert reply["ok"]  # retry after respawn succeeded
            snapshot = self.run(gateway.handle({"op": "stats"}))["stats"]
            assert snapshot["supervision"]["respawns"] == 1
            assert snapshot["supervision"]["retries"] == 1
            assert snapshot["failures"]["worker_respawns"] == 1
            assert snapshot["failures"]["shard_retries"] == 1
            assert snapshot["internal_errors"] == 0
        finally:
            service.close()


class TestGatewayShutdown:
    def run(self, coro):
        return asyncio.run(coro)

    def test_draining_sheds_with_structured_error(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            gateway._draining = True
            response = self.run(
                gateway.handle({"op": "query", "dims": [0], "weights": [0.5]})
            )
            assert response["code"] == "OVERLOADED"
            assert response["error"] == "shutting_down"
            assert gateway.n_rejected_load == 1
        finally:
            service.close()

    def test_graceful_drain_completes_in_flight_and_refuses_new(self):
        """Shutdown mid-request: the in-flight request completes, the
        listener refuses new connections, no client task is left behind."""
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        original = service.execute_tiered

        def slow_execute(*args, **kwargs):
            time.sleep(0.15)  # keep the request in flight across shutdown
            return original(*args, **kwargs)

        service.execute_tiered = slow_execute

        async def _run():
            host, port = await gateway.start("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                json.dumps(
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]}
                ).encode()
                + b"\n"
            )
            await writer.drain()
            await asyncio.sleep(0.05)  # request reaches the service
            shut = asyncio.create_task(gateway.shutdown(drain_seconds=5.0))
            line = await reader.readline()
            writer.close()  # EOF lets the handler task exit promptly
            try:
                await writer.wait_closed()
            except ConnectionResetError:
                pass
            await shut
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
            return json.loads(line)

        try:
            response = self.run(_run())
            assert response["ok"] and response["tier"] == "computed"
            assert gateway._pending == 0
            assert gateway._client_tasks == set()
            assert gateway._server is None
        finally:
            service.close()


class TestServerRoundTrip:
    def test_json_lines_over_tcp(self):
        service = make_service()
        gateway = AsyncGateway(service, k=5)
        try:
            responses = run_self_test(
                gateway,
                [
                    {"op": "ping"},
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]},
                    {"op": "query", "dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]},
                    "not an object",
                    {"op": "stats"},
                ],
            )
            assert responses[0]["ok"]
            assert responses[1]["tier"] == "computed"
            assert responses[2]["tier"] == "exact"
            assert responses[3]["error"] == "bad_request"
            snapshot = responses[4]["stats"]
            assert snapshot["n_queries"] == 2 and snapshot["n_exact_hits"] == 1
        finally:
            service.close()


def test_cli_self_test(capsys):
    from repro.cli import main

    code = main(
        [
            "serve",
            "--family",
            "kb",
            "--shards",
            "3",
            "--self-test",
            "2",
            "--k",
            "5",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "self-test: 2 queries over 3 shard(s)" in out


def test_cli_self_test_supervised_surfaces_failure_counters(capsys):
    from repro.cli import main

    code = main(
        [
            "serve",
            "--family",
            "kb",
            "--shards",
            "3",
            "--self-test",
            "2",
            "--k",
            "5",
            "--supervise",
            "--deadline-ms",
            "30000",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    snapshot = json.loads(out[out.index("{") :])
    assert set(snapshot["failures"]) == {
        "deadline_hits",
        "degraded_responses",
        "shard_retries",
        "worker_respawns",
        "breaker_transitions",
    }
    assert snapshot["supervision"]["breaker_states"] == ["closed"] * 3
    assert snapshot["supervision"]["open_rejections"] == 0
