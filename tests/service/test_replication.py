"""Replica sets: failover, epoch fencing, staleness, gateway wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Mutation, Query, ShardedQueryService
from repro.errors import ReplicationError, ValidationError
from repro.service import AsyncGateway, FaultPlan, FaultSpec
from repro.service.gateway import run_self_test
from repro.service.replication import (
    LocalReplica,
    PeerComputation,
    ReplicaSet,
    clone_data,
)


def make_dataset(n=60, m=6, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


QUERY = Query([0, 2, 4], [0.7, 0.3, 0.5])
BATCH = [Mutation.update(3, 1, 0.5)]
BATCH2 = [Mutation.update(9, 2, 0.25)]


def make_set(n=3, seed=0, **set_kwargs):
    return ReplicaSet.build(
        make_dataset(seed=seed), n, n_shards=2, set_kwargs=set_kwargs
    )


def answer_key(computation):
    """The full bit-identity surface of one answer."""
    return (
        tuple(int(i) for i in computation.result.ids),
        tuple(float(s) for s in computation.result.scores),
        tuple(
            (dim,) + tuple(computation.immutable_interval(dim))
            for dim in computation.sequences
        ),
    )


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCloneData:
    def test_clone_is_bit_identical_and_independent(self):
        data = make_dataset()
        clone = clone_data(data)
        assert clone.fingerprint() == data.fingerprint()
        assert clone.epoch == data.epoch
        clone.apply(Mutation.update(0, 0, 0.9))
        assert clone.fingerprint() != data.fingerprint()
        assert data.epoch == 0 and clone.epoch == 1

    def test_clone_restores_nonzero_epoch(self):
        data = make_dataset()
        data.apply(Mutation.update(0, 0, 0.9))
        assert clone_data(data).epoch == 1


class TestLocalReplicaFencing:
    def test_sequential_epoch_accepted(self):
        replica = LocalReplica(ShardedQueryService(make_dataset(), n_shards=2))
        replica.replicate(BATCH, 1)
        replica.replicate(BATCH2, 2)
        assert replica.epoch == 2
        replica.close()

    @pytest.mark.parametrize("epoch", [0, 2, 5])
    def test_gap_or_replay_refused(self, epoch):
        replica = LocalReplica(ShardedQueryService(make_dataset(), n_shards=2))
        with pytest.raises(ReplicationError):
            replica.replicate(BATCH, epoch)
        assert replica.epoch == 0  # refused batches must not apply
        replica.close()


class TestReplicaSetReads:
    def test_matches_single_node_oracle_from_every_replica(self):
        oracle = ShardedQueryService(make_dataset(), n_shards=2)
        expected = answer_key(oracle.execute_tiered(QUERY, k=5)[0])
        with make_set(3) as replicas:
            # Round-robin: three reads land on three different replicas.
            for _ in range(3):
                computation, tier = replicas.execute_tiered(QUERY, k=5)
                assert answer_key(computation) == expected
                assert tier in ("computed", "cache_hit", "rebased")
        oracle.close()

    def test_redispatch_on_injected_crash(self):
        plan = FaultPlan([FaultSpec("replica_crash", 0, at=0)])
        with ReplicaSet.build(
            make_dataset(),
            2,
            n_shards=2,
            set_kwargs={"fault_plan": plan},
        ) as replicas:
            computation, _ = replicas.execute_tiered(QUERY, k=5)
            assert computation.result.ids  # answered by the survivor
            assert replicas.counters.redispatches == 1
            assert plan.exhausted

    def test_all_replicas_down_is_structured_error(self):
        plan = FaultPlan(
            [FaultSpec("replica_crash", i, at=0) for i in range(2)]
        )
        with ReplicaSet.build(
            make_dataset(),
            2,
            n_shards=2,
            set_kwargs={"fault_plan": plan, "failure_threshold": 1},
        ) as replicas:
            with pytest.raises(ReplicationError):
                replicas.execute_tiered(QUERY, k=5)


class TestReplicaSetWrites:
    def test_writes_replicate_to_every_replica(self):
        with make_set(3) as replicas:
            replicas.apply_mutations(BATCH)
            replicas.apply_mutations(BATCH2)
            epochs = [r.epoch for r in replicas.replicas]
            assert epochs == [2, 2, 2]
            fingerprints = {
                r.service.index.dataset.fingerprint()
                for r in replicas.replicas
            }
            assert len(fingerprints) == 1
            assert replicas.counters.replicated_batches == 4

    def test_reads_after_write_identical_across_replicas(self):
        with make_set(3) as replicas:
            replicas.apply_mutations(BATCH)
            keys = {
                answer_key(replicas.execute_tiered(QUERY, k=5)[0])
                for _ in range(3)
            }
            assert len(keys) == 1

    def test_bad_batch_fails_without_failover(self):
        with make_set(2) as replicas:
            with pytest.raises(ValidationError):
                replicas.apply_mutations([Mutation.update(10**6, 0, 0.5)])
            assert replicas.counters.failovers == 0
            assert [r.epoch for r in replicas.replicas] == [0, 0]

    def test_write_failover_promotes_and_applies(self):
        plan = FaultPlan([FaultSpec("replica_crash", 0, at=0)])
        with ReplicaSet.build(
            make_dataset(),
            2,
            n_shards=2,
            set_kwargs={"fault_plan": plan, "failure_threshold": 1},
        ) as replicas:
            replicas.apply_mutations(BATCH)
            assert replicas.counters.failovers == 1
            assert replicas.primary_name == "replica-1"
            assert replicas.primary.epoch == 1

    def test_recovered_replica_catches_up_from_ship_log(self):
        clock = FakeClock()
        with ReplicaSet.build(
            make_dataset(),
            2,
            n_shards=2,
            set_kwargs={
                "failure_threshold": 1,
                "reset_after": 1.0,
                "clock": clock,
            },
        ) as replicas:
            lagger = replicas.replicas[1]
            replicas.breaker_of(lagger.name).record_failure()
            assert replicas.breaker_of(lagger.name).state == "open"
            replicas.apply_mutations(BATCH)  # shipped past the open breaker
            assert lagger.epoch == 0
            clock.t = 2.0  # breaker half-opens; next ship reaches it
            replicas.apply_mutations(BATCH2)
            assert replicas.counters.replication_rejects == 1
            assert replicas.counters.catch_ups == 1
            assert [r.epoch for r in replicas.replicas] == [2, 2]
            fingerprints = {
                r.service.index.dataset.fingerprint()
                for r in replicas.replicas
            }
            assert len(fingerprints) == 1

    def test_gap_past_bounded_log_requires_resync(self):
        clock = FakeClock()
        with ReplicaSet.build(
            make_dataset(),
            2,
            n_shards=2,
            set_kwargs={
                "failure_threshold": 1,
                "reset_after": 1.0,
                "clock": clock,
                "replication_log_capacity": 1,
            },
        ) as replicas:
            lagger = replicas.replicas[1]
            replicas.breaker_of(lagger.name).record_failure()
            replicas.apply_mutations(BATCH)
            replicas.apply_mutations(BATCH2)  # evicts epoch 1 from the log
            clock.t = 2.0
            replicas.apply_mutations([Mutation.update(5, 3, 0.75)])
            assert replicas.counters.resync_required == 1
            assert lagger.epoch == 0  # never partially applied

    def test_set_level_epoch_fence(self):
        with make_set(2) as replicas:
            with pytest.raises(ReplicationError):
                replicas.apply_replicated(BATCH, 2)  # gap: set is at 0
            replicas.apply_replicated(BATCH, 1)
            assert [r.epoch for r in replicas.replicas] == [1, 1]


class TestMinEpoch:
    def test_fresh_read_not_counted_stale(self):
        with make_set(2) as replicas:
            replicas.apply_mutations(BATCH)
            computation, _ = replicas.execute_tiered(QUERY, k=5, min_epoch=1)
            assert computation.epoch == 1
            assert replicas.counters.stale_reads == 0

    def test_unreachable_epoch_served_stale_and_counted(self):
        with make_set(
            2, fence_wait_s=0.02, fence_poll_s=0.005
        ) as replicas:
            computation, _ = replicas.execute_tiered(QUERY, k=5, min_epoch=7)
            assert computation.epoch == 0  # explicit, never silent
            assert replicas.counters.stale_reads == 1
            assert replicas.counters.fence_waits == 1


class TestHealthProbes:
    def test_probe_feeds_breakers_and_promotes(self):
        clock = FakeClock()
        with ReplicaSet.build(
            make_dataset(),
            2,
            n_shards=2,
            set_kwargs={"failure_threshold": 1, "clock": clock},
        ) as replicas:
            dead = replicas.replicas[0]
            dead.service.close()
            dead.ping = lambda: (_ for _ in ()).throw(ConnectionError("down"))
            liveness = replicas.probe_now()
            assert liveness == {"replica-0": False, "replica-1": True}
            assert replicas.breaker_of("replica-0").state == "open"
            assert replicas.primary_name == "replica-1"
            assert replicas.counters.failovers == 1
            snapshot = replicas.replication_snapshot()
            assert snapshot["primary"] == "replica-1"
            assert snapshot["probes"] == 1
            assert snapshot["health_transitions"] >= 1


class TestGatewayIntegration:
    def test_query_replicate_and_stats_over_the_wire(self):
        replicas = make_set(2)
        gateway = AsyncGateway(replicas)
        responses = run_self_test(
            gateway,
            [
                {"op": "ping"},
                {
                    "op": "query",
                    "dims": [0, 2, 4],
                    "weights": [0.7, 0.3, 0.5],
                    "k": 5,
                },
                {
                    "op": "replicate",
                    "epoch": 1,
                    "mutations": [
                        {"kind": "update", "id": 3, "dim": 1, "value": 0.5}
                    ],
                },
                {
                    "op": "replicate",
                    "epoch": 5,
                    "mutations": [
                        {"kind": "update", "id": 3, "dim": 1, "value": 0.5}
                    ],
                },
                {
                    "op": "query",
                    "dims": [0, 2, 4],
                    "weights": [0.7, 0.3, 0.5],
                    "k": 5,
                    "min_epoch": 9,
                },
                {"op": "stats"},
            ],
        )
        ping, fresh, accepted, fenced, stale, stats = responses
        assert ping["ok"] and ping["epoch"] == 0
        assert fresh["ok"] and "stale" not in fresh
        assert accepted["ok"] and accepted["epoch"] == 1
        assert not fenced["ok"] and fenced["code"] == "EPOCH_FENCE"
        assert fenced["epoch"] == 1
        assert stale["ok"] and stale["stale"] is True
        replication = stats["stats"]["replication"]
        assert replication["n_replicas"] == 2
        assert replication["replicated_batches_received"] == 1
        assert replication["stale_reads"] == 1

    def test_plain_service_counts_stale_reads_gateway_side(self):
        service = ShardedQueryService(make_dataset(), n_shards=2)
        gateway = AsyncGateway(service)
        responses = run_self_test(
            gateway,
            [
                {
                    "op": "query",
                    "dims": [0, 2, 4],
                    "weights": [0.7, 0.3, 0.5],
                    "k": 5,
                    "min_epoch": 3,
                },
                {"op": "stats"},
            ],
        )
        assert responses[0]["ok"] and responses[0]["stale"] is True
        assert responses[1]["stats"]["replication"]["stale_reads"] == 1


class TestPeerComputation:
    def test_rendered_reply_round_trips(self):
        service = ShardedQueryService(make_dataset(), n_shards=2)
        gateway = AsyncGateway(service)
        responses = run_self_test(
            gateway,
            [
                {
                    "op": "query",
                    "dims": [0, 2, 4],
                    "weights": [0.7, 0.3, 0.5],
                    "k": 5,
                }
            ],
        )
        oracle = ShardedQueryService(make_dataset(), n_shards=2)
        expected = oracle.execute_tiered(QUERY, k=5)[0]
        peer = PeerComputation(responses[0])
        assert answer_key(peer) == answer_key(expected)
        assert peer.epoch == expected.epoch
        for dim in expected.sequences:
            assert peer.query.weight_of(dim) == expected.query.weight_of(dim)
        oracle.close()
