"""Tests for the LRU region cache and its key function."""

from __future__ import annotations

import threading

import pytest

from repro import Query
from repro.errors import ValidationError
from repro.service import RegionCache, region_cache_key


class TestRegionCacheKey:
    def test_identical_queries_share_a_key(self):
        a = region_cache_key(Query([0, 3], [0.5, 0.7]), 10, 0, "cpt", True)
        b = region_cache_key(Query([3, 0], [0.7, 0.5]), 10, 0, "cpt", True)
        assert a == b  # Query sorts dims; same vector either way

    def test_key_captures_every_engine_input(self):
        base = region_cache_key(Query([0, 3], [0.5, 0.7]), 10, 0, "cpt", True)
        variants = [
            region_cache_key(Query([0, 4], [0.5, 0.7]), 10, 0, "cpt", True),
            region_cache_key(Query([0, 3], [0.5, 0.6]), 10, 0, "cpt", True),
            region_cache_key(Query([0, 3], [0.5, 0.7]), 11, 0, "cpt", True),
            region_cache_key(Query([0, 3], [0.5, 0.7]), 10, 1, "cpt", True),
            region_cache_key(Query([0, 3], [0.5, 0.7]), 10, 0, "scan", True),
            region_cache_key(Query([0, 3], [0.5, 0.7]), 10, 0, "cpt", False),
        ]
        assert all(variant != base for variant in variants)
        assert len(set(variants)) == len(variants)

    def test_weights_compared_exactly(self):
        a = region_cache_key(Query([0], [0.5]), 5, 0, "cpt", True)
        b = region_cache_key(Query([0], [0.5 + 1e-16]), 5, 0, "cpt", True)
        # 0.5 + 1e-16 rounds back to 0.5 in float64: genuinely the same query.
        assert (0.5 + 1e-16 == 0.5) == (a == b)
        c = region_cache_key(Query([0], [0.5000001]), 5, 0, "cpt", True)
        assert c != a


class TestRegionCache:
    def test_put_get_round_trip(self):
        cache = RegionCache(capacity=4)
        key = region_cache_key(Query([0], [0.5]), 5, 0, "cpt", True)
        marker = object()
        cache.put(key, marker)
        assert cache.get(key) is marker
        assert key in cache
        assert len(cache) == 1

    def test_miss_returns_none_and_counts(self):
        cache = RegionCache(capacity=4)
        key = region_cache_key(Query([0], [0.5]), 5, 0, "cpt", True)
        assert cache.get(key) is None
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 0
        assert stats.hit_rate == 0.0

    def test_lru_eviction_order(self):
        cache = RegionCache(capacity=2)
        keys = [
            region_cache_key(Query([0], [w]), 5, 0, "cpt", True)
            for w in (0.1, 0.2, 0.3)
        ]
        cache.put(keys[0], "a")
        cache.put(keys[1], "b")
        assert cache.get(keys[0]) == "a"  # refresh key 0's recency
        cache.put(keys[2], "c")  # evicts key 1, the LRU entry
        assert keys[1] not in cache
        assert cache.get(keys[0]) == "a"
        assert cache.get(keys[2]) == "c"
        assert cache.stats().evictions == 1

    def test_peek_does_not_touch_counters(self):
        cache = RegionCache(capacity=2)
        key = region_cache_key(Query([0], [0.5]), 5, 0, "cpt", True)
        cache.put(key, "a")
        assert cache.peek(key) == "a"
        assert cache.peek(("nope",)) is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_clear_keeps_lifetime_counters(self):
        cache = RegionCache(capacity=2)
        key = region_cache_key(Query([0], [0.5]), 5, 0, "cpt", True)
        cache.put(key, "a")
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            RegionCache(capacity=0)

    def test_thread_safety_under_contention(self):
        cache = RegionCache(capacity=64)
        keys = [
            region_cache_key(Query([0], [0.01 + 0.001 * i]), 5, 0, "cpt", True)
            for i in range(32)
        ]
        errors = []

        def hammer(worker: int) -> None:
            try:
                for _ in range(200):
                    for i, key in enumerate(keys):
                        cache.put(key, (worker, i))
                        got = cache.get(key)
                        assert got is None or isinstance(got, tuple)
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
