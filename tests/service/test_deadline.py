"""Unit tests for per-request deadlines (fake clocks, no sleeping)."""

from __future__ import annotations

import pytest

from repro.errors import DeadlineExceeded, ValidationError
from repro.service import Deadline, deadline_from_payload


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestDeadline:
    def test_budget_accounting(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.elapsed() == 0.0
        assert deadline.remaining() == 1.0
        assert not deadline.expired()
        clock.advance(0.4)
        assert deadline.elapsed() == pytest.approx(0.4)
        assert deadline.remaining() == pytest.approx(0.6)
        clock.advance(0.6)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_remaining_never_negative(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0

    def test_check_raises_with_location(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        deadline.check("merge")  # within budget: no-op
        clock.advance(0.5)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("merge")
        assert excinfo.value.where == "merge"
        assert excinfo.value.budget == pytest.approx(0.5)
        assert excinfo.value.elapsed >= 0.5

    def test_timeout_is_remaining_and_never_degenerate(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.timeout() == pytest.approx(1.0)
        clock.advance(1.0 - 1e-9)
        assert deadline.timeout() > 0.0  # clamped, not zero
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded):
            deadline.timeout("shard-call")

    def test_budget_validated(self):
        with pytest.raises(ValidationError):
            Deadline(0.0)
        with pytest.raises(ValidationError):
            Deadline(-1.0)

    def test_after_constructor(self):
        clock = FakeClock(100.0)
        deadline = Deadline.after(2.0, clock=clock)
        clock.advance(1.0)
        assert deadline.remaining() == pytest.approx(1.0)

    def test_start_is_pinned_at_construction(self):
        """Each layer measures against the same origin — the budget
        covers the whole request, not each hop."""
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(0.7)

        def inner_layer(d):
            return d.remaining()

        assert inner_layer(deadline) == pytest.approx(0.3)


class TestDeadlineFromPayload:
    def test_request_field_wins_over_default(self):
        clock = FakeClock()
        deadline = deadline_from_payload(
            {"deadline_ms": 250}, default_ms=1000, clock=clock
        )
        assert deadline.budget == pytest.approx(0.25)

    def test_default_applies_when_absent(self):
        deadline = deadline_from_payload({}, default_ms=1000, clock=FakeClock())
        assert deadline.budget == pytest.approx(1.0)

    def test_none_when_neither_set(self):
        assert deadline_from_payload({}) is None

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            deadline_from_payload({"deadline_ms": "soon"})

    def test_non_positive_rejected(self):
        with pytest.raises(ValidationError):
            deadline_from_payload({"deadline_ms": 0})
        with pytest.raises(ValidationError):
            deadline_from_payload({"deadline_ms": -5})
