"""Service-level tests for the region-aware cache tier.

Covers the ``reuse`` policy knob, the arrival-order stream route, the
:class:`RegionIndex` life-cycle against ``put`` refreshes / capacity
eviction / mutation sweeps (postings must drop atomically with their
parent entries), per-tier statistics, and the concurrency contract: a
mutation racing a region lookup never serves a stale epoch.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import (
    Dataset,
    Mutation,
    MutationBatch,
    Query,
    QueryService,
    brute_force_topk,
)
from repro.service import RegionCache, region_cache_key
from repro.service.cache import rebase_computation

N, M, K = 150, 5, 5


@pytest.fixture()
def dataset() -> Dataset:
    rng = np.random.default_rng(42)
    dense = rng.random((N, M)) * (rng.random((N, M)) < 0.8)
    return Dataset.from_dense(dense)


def perturbed_inside(computation, query, dim):
    """A weight strictly inside *dim*'s current region, off the anchor."""
    region = computation.sequences[dim].current
    lo, hi = region.weight_interval
    for t in (0.5, 0.31, 0.73):
        w = lo + t * (hi - lo)
        if (
            region.contains_weight(w)
            and 0.0 < w <= 1.0
            and w != query.weight_of(dim)
        ):
            return query.with_weight(dim, w)
    return None


class TestReuseKnob:
    def test_region_hit_skips_engine(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            query = Query([0, 1, 2], [0.5, 0.6, 0.4])
            anchor = service.execute(query, K)
            probe = perturbed_inside(anchor, query, 1)
            assert probe is not None
            served = service.execute(probe, K)
            assert served.reuse is not None
            assert served.reuse.dim == 1
            stats = service.cache.stats()
            assert stats.region_hits == 1
            # The view is not inserted: the anchor remains the only entry.
            assert stats.size == 1

    def test_exact_mode_never_region_hits(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="exact") as service:
            query = Query([0, 1, 2], [0.5, 0.6, 0.4])
            anchor = service.execute(query, K)
            probe = perturbed_inside(anchor, query, 1)
            assert probe is not None
            served = service.execute(probe, K)
            assert served.reuse is None
            assert service.cache.stats().region_hits == 0

    def test_off_mode_disables_the_cache(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="off") as service:
            query = Query([0, 1], [0.5, 0.6])
            service.execute(query, K)
            service.execute(query, K)
            assert len(service.cache) == 0
            batch = service.run_batch([query, query], K)
            assert len(batch) == 2
            assert len(service.cache) == 0

    def test_unknown_reuse_mode_rejected(self, dataset):
        with pytest.raises(Exception):
            QueryService(dataset, reuse="fuzzy")

    def test_region_hit_suppresses_engine_work_in_batches(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            query = Query([0, 1, 2], [0.5, 0.6, 0.4])
            anchor = service.execute(query, K)
            probe = perturbed_inside(anchor, query, 2)
            assert probe is not None
            result = service.run_batch([probe, probe, query], K)
            stats = result.stats
            assert stats.n_computed == 0
            assert stats.n_region_hits >= 1
            assert stats.n_exact_hits >= 1
            assert result[0].result.ids == result[1].result.ids

    def test_run_stream_serves_drag_bursts(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            query = Query([0, 1, 2], [0.5, 0.6, 0.4])
            anchor = service.execute(query, K)
            probes = [perturbed_inside(anchor, query, d) for d in (0, 1, 2)]
            probes = [p for p in probes if p is not None]
            assert probes
            result = service.run_stream([query] + probes, K)
            stats = result.stats
            assert stats.n_exact_hits == 1
            assert stats.n_region_hits == len(probes)
            assert stats.n_computed == 0
            rollup = stats.tier_latencies()
            assert set(rollup) <= {"exact", "region", "computed"}
            assert rollup["region"]["n"] == len(probes)
            assert "region" in stats.render()


class TestPutRefresh:
    """ISSUE 5 satellite: refreshing a key is an explicit drop + reinsert."""

    def test_refresh_purges_old_postings(self, dataset):
        rng = np.random.default_rng(9)
        other = Dataset.from_dense(
            rng.random((N, M)) * (rng.random((N, M)) < 0.8)
        )
        query = Query([0, 1, 2], [0.5, 0.6, 0.4])
        with QueryService(dataset, executor="sequential", reuse="region") as a, \
                QueryService(other, executor="sequential", reuse="region") as b:
            comp_old = a.execute(query, K)
            comp_new = b.execute(query, K)

        cache = RegionCache(capacity=8)
        key = region_cache_key(query, K, 0, "cpt", True)
        cache.put(key, comp_old)
        postings_old = cache.stats().postings
        assert postings_old > 0
        cache.put(key, comp_new)
        stats = cache.stats()
        # Exactly the new computation's postings remain; none of the old
        # entry's postings survive the refresh.
        assert stats.size == 1
        expected = sum(len(s.regions) for s in comp_new.sequences.values())
        assert stats.postings == expected
        # Any region hit resolves against the *new* computation.
        probe = perturbed_inside(comp_new, query, 1)
        if probe is not None:
            view, tier = cache.lookup(
                region_cache_key(probe, K, 0, "cpt", True), probe, other
            )
            assert tier == "region"
            assert view.result.ids == list(
                comp_new.sequences[1].current.result_ids
            )

    def test_eviction_purges_postings(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            comps = {}
            for i, dims in enumerate(([0, 1], [1, 2], [2, 3])):
                q = Query(dims, [0.5, 0.6])
                comps[i] = (q, service.execute(q, K))
        cache = RegionCache(capacity=2)
        for i, (q, comp) in comps.items():
            cache.put(region_cache_key(q, K, 0, "cpt", True), comp)
        stats = cache.stats()
        assert stats.size == 2
        assert stats.evictions == 1
        survivors = [comps[1][1], comps[2][1]]
        expected = sum(
            len(s.regions) for c in survivors for s in c.sequences.values()
        )
        assert stats.postings == expected

    def test_clear_drops_postings(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            service.execute(Query([0, 1], [0.5, 0.6]), K)
            assert service.cache.stats().postings > 0
            service.cache.clear()
            assert service.cache.stats().postings == 0
            assert len(service.cache) == 0


class TestSweepInteraction:
    """Sweeps drop postings atomically; peek never resurrects them."""

    def test_sweep_drops_postings_with_entries(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            queries = [
                Query([0, 1, 2], w)
                for w in ([0.5, 0.6, 0.4], [0.3, 0.7, 0.5], [0.8, 0.4, 0.6])
            ]
            for q in queries:
                service.execute(q, K)
            before = service.cache.stats()
            assert before.postings > 0
            kept, dropped = service.cache.sweep(lambda comp: False)
            assert (kept, dropped) == (0, 3)
            after = service.cache.stats()
            assert after.postings == 0
            assert after.invalidations == 3
            # A perturbation that would have region-hit now recomputes.
            probe = Query([0, 1, 2], [0.5, 0.6, 0.4001])
            served = service.execute(probe, K)
            assert served.reuse is None

    def test_partial_sweep_keeps_survivor_postings(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            q_keep = Query([0, 1], [0.5, 0.6])
            q_drop = Query([1, 2], [0.5, 0.6])
            keep_comp = service.execute(q_keep, K)
            service.execute(q_drop, K)
            service.cache.sweep(lambda comp: comp is keep_comp)
            stats = service.cache.stats()
            expected = sum(
                len(s.regions) for s in keep_comp.sequences.values()
            )
            assert stats.postings == expected
            probe = perturbed_inside(keep_comp, q_keep, 0)
            if probe is not None:
                assert service.execute(probe, K).reuse is not None

    def test_peek_does_not_touch_tier_counters(self, dataset):
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            q = Query([0, 1], [0.5, 0.6])
            service.execute(q, K)
            key = region_cache_key(q, K, 0, "cpt", True)
            before = service.cache.stats()
            assert service.cache.peek(key) is not None
            after = service.cache.stats()
            assert (after.hits, after.region_hits, after.misses) == (
                before.hits,
                before.region_hits,
                before.misses,
            )

    def test_mutation_sweep_blocks_stale_region_hits(self, dataset):
        """After apply_mutations returns, evicted regions cannot serve."""
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            query = Query([0, 1, 2], [0.5, 0.6, 0.4])
            anchor = service.execute(query, K)
            probe = perturbed_inside(anchor, query, 1)
            assert probe is not None
            assert service.execute(probe, K).reuse is not None
            # Delete the top tuple: the entry (and its postings) must go.
            top = anchor.result.ids[0]
            stats = service.apply_mutations(MutationBatch((Mutation.delete(top),)))
            assert stats.regions_evicted >= 1
            served = service.execute(probe, K)
            assert served.reuse is None
            assert top not in served.result.ids
            mutated = service.index.dataset.compacted()
            assert served.result.ids == brute_force_topk(mutated, probe, K).ids


class TestRegionRaceSafety:
    """Mutations racing region lookups: every answer is epoch-consistent.

    Reuses the RW-gate harness shape of ``test_mutation_service``: racers
    hammer anchor + perturbed queries while the main thread applies
    mutations; every returned computation (engine-made or region-served)
    must equal the brute-force top-k of the dataset snapshot at its
    stamped epoch — a region view served from an entry the sweep should
    have dropped would fail against every snapshot.
    """

    def test_region_hits_racing_mutations_stay_epoch_consistent(self, dataset):
        rng = np.random.default_rng(7)
        snapshots = {0: dataset.compacted()}
        results = []
        stop = threading.Event()

        with QueryService(
            dataset, executor="sequential", reuse="region", max_workers=2
        ) as service:
            anchors = [
                Query([0, 1, 2], rng.uniform(0.3, 0.8, 3)) for _ in range(3)
            ]

            def racer():
                local = np.random.default_rng(threading.get_ident() % 2**32)
                while not stop.is_set():
                    base = anchors[int(local.integers(len(anchors)))]
                    dim = int(base.dims[int(local.integers(3))])
                    anchor_comp = service.execute(base, K)
                    results.append((base, anchor_comp))
                    probe = perturbed_inside(anchor_comp, base, dim)
                    if probe is not None:
                        results.append((probe, service.execute(probe, K)))

            threads = [threading.Thread(target=racer) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                for _ in range(4):
                    time.sleep(0.05)
                    batch = MutationBatch(
                        (
                            Mutation.update(
                                int(rng.integers(N)),
                                int(rng.integers(M)),
                                float(rng.uniform(0.0, 1.0)),
                            ),
                        )
                    )
                    service.apply_mutations(batch)
                    snapshots[service.index.epoch] = (
                        service.index.dataset.compacted()
                    )
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
                    assert not thread.is_alive()

        assert results, "racers produced no computations"
        n_region = 0
        for query, computation in results:
            if computation.reuse is not None:
                n_region += 1
            snapshot = snapshots[computation.epoch]
            oracle = brute_force_topk(snapshot, query, K)
            assert computation.result.ids == oracle.ids, (
                f"stale serve: answer at epoch {computation.epoch} does not "
                f"match that epoch's data (reuse={computation.reuse})"
            )
        assert n_region > 0, "race exercised no region hits"


class TestRebaseFunction:
    def test_rebase_rejects_nothing_silently(self, dataset):
        """Direct rebase at a strictly-inside weight round-trips cleanly."""
        with QueryService(dataset, executor="sequential", reuse="region") as service:
            query = Query([0, 1, 2], [0.5, 0.6, 0.4])
            anchor = service.execute(query, K, phi=1)
            seq = anchor.sequences[0]
            for region_index, region in enumerate(seq.regions):
                lo, hi = region.weight_interval
                w = lo + 0.5 * (hi - lo)
                if not region.contains_weight(w) or not 0.0 < w <= 1.0:
                    continue
                view = rebase_computation(
                    anchor,
                    query.with_weight(0, w),
                    0,
                    region_index,
                    dataset,
                )
                assert view is not None
                assert view.result.ids == list(region.result_ids)
                assert view.sequences[0].current_index == region_index
                # Contiguity survives re-basing (shared bound objects).
                regions = view.sequences[0].regions
                for left, right in zip(regions, regions[1:]):
                    assert left.upper.delta == right.lower.delta
