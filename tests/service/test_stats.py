"""Tests for the service statistics aggregator."""

from __future__ import annotations

import pytest

from repro import ImmutableRegionEngine, InvertedIndex, Query
from repro.errors import ValidationError
from repro.service import MethodRollup, ServiceStats, percentile

from ..conftest import RUNNING_EXAMPLE_ROWS


class TestPercentile:
    def test_empty_reads_zero(self):
        assert percentile([], 95.0) == 0.0

    def test_nearest_rank_is_an_observed_value(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50.0) == 3.0
        assert percentile(values, 95.0) == 5.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_range_validated(self):
        with pytest.raises(ValidationError):
            percentile([1.0], 101.0)


class TestServiceStats:
    def test_empty_stats_read_zero(self):
        stats = ServiceStats()
        assert stats.n_queries == 0
        assert stats.cache_hit_rate == 0.0
        assert stats.throughput_qps == 0.0
        assert stats.p50_latency_seconds == 0.0
        assert stats.mean_latency_seconds == 0.0

    def test_counts_and_hit_rate(self):
        stats = ServiceStats()
        stats.record("cpt", 0.010, False)
        stats.record("cpt", 0.000, True)
        stats.record("scan", 0.020, False)
        stats.record("cpt", 0.000, True)
        assert stats.n_queries == 4
        assert stats.n_cache_hits == 2
        assert stats.n_computed == 2
        assert stats.cache_hit_rate == 0.5

    def test_throughput_uses_wall_clock(self):
        stats = ServiceStats()
        for _ in range(10):
            stats.record("cpt", 0.001, False)
        stats.wall_seconds = 2.0
        assert stats.throughput_qps == pytest.approx(5.0)

    def test_latency_percentiles(self):
        stats = ServiceStats()
        for ms in range(1, 101):
            stats.record("cpt", ms / 1000.0, False)
        assert stats.p50_latency_seconds == pytest.approx(0.050)
        assert stats.p95_latency_seconds == pytest.approx(0.095)

    def test_rollups_only_count_fresh_computations(self):
        from repro import Dataset

        engine = ImmutableRegionEngine(
            InvertedIndex(Dataset.from_dense(RUNNING_EXAMPLE_ROWS)), method="cpt"
        )
        computation = engine.compute(Query([0, 1], [0.8, 0.5]), k=2)
        stats = ServiceStats()
        stats.record("cpt", 0.01, False, metrics=computation.metrics)
        stats.record("cpt", 0.00, True)  # cache hit: no metrics, no rollup
        assert stats.rollups["cpt"].n_queries == 1
        assert stats.rollups["cpt"].candidates_total == float(
            computation.metrics.candidates_total
        )

    def test_rollup_incremental_mean_matches_batch_mean(self):
        rollup = MethodRollup("cpt")

        class FakeMemory:
            total_kbytes = 2.0

        class FakeMetrics:
            evaluated_per_dim_mean = 0.0
            io_seconds = 0.0
            cpu_seconds = 0.0
            memory = FakeMemory()
            candidates_total = 0

        values = [3.0, 5.0, 10.0]
        for value in values:
            metrics = FakeMetrics()
            metrics.evaluated_per_dim_mean = value
            metrics.io_seconds = value / 10.0
            rollup.add(metrics)
        assert rollup.n_queries == 3
        assert rollup.evaluated_per_dim == pytest.approx(sum(values) / 3)
        assert rollup.io_seconds == pytest.approx(sum(values) / 30.0)

    def test_as_dict_and_render(self):
        stats = ServiceStats()
        stats.record("cpt", 0.010, False)
        stats.record("cpt", 0.000, True)
        stats.wall_seconds = 0.5
        payload = stats.as_dict()
        assert payload["n_queries"] == 2
        assert payload["cache_hit_rate"] == 0.5
        assert payload["latency_seconds"]["p95"] == pytest.approx(0.010)
        text = stats.render()
        assert "2 queries" in text
        assert "50.0%" in text

class TestEmptyTierGuards:
    """A quiet tier (or a whole quiet service) must render, not raise."""

    def test_empty_service_tier_latencies(self):
        from repro.service import EMPTY_TIER
        from repro.service.stats import TIERS

        stats = ServiceStats()
        assert stats.tier_latencies() == {}
        rollup = stats.tier_latencies(include_empty=True)
        assert set(rollup) == set(TIERS)
        for tier in TIERS:
            assert rollup[tier] == EMPTY_TIER
            assert rollup[tier] is not EMPTY_TIER  # a copy, safe to mutate

    def test_empty_service_render_and_as_dict(self):
        stats = ServiceStats()
        text = stats.render()
        assert "0 queries" in text
        payload = stats.as_dict()
        assert payload["tiers"] == {}
        assert payload["latency_seconds"]["p50"] == 0.0

    def test_partial_traffic_marks_only_quiet_tiers(self):
        from repro.service import EMPTY_TIER

        stats = ServiceStats()
        stats.record("cpt", 0.004, False)
        rollup = stats.tier_latencies(include_empty=True)
        assert rollup["computed"]["n"] == 1.0
        assert rollup["region"] == EMPTY_TIER
        assert rollup["exact"] == EMPTY_TIER
        # Default view still drops the quiet tiers.
        assert set(stats.tier_latencies()) == {"computed"}

    def test_region_line_renders_with_zero_region_latency(self):
        # n_region_hits > 0 but an adversarial caller cleared records of
        # that tier between checks cannot happen through the API; the
        # render path still guards via .get(..., EMPTY_TIER).
        stats = ServiceStats()
        stats.record("cpt", 0.0, True, tier="region")
        text = stats.render()
        assert "region hits" in text


class TestBoundedWindow:
    """Satellite of the loadgen PR: stats memory must stay O(window)."""

    def test_memory_bounded_but_totals_exact(self):
        stats = ServiceStats(window=64)
        for i in range(1000):
            stats.record("cpt", i / 1000.0, i % 4 == 0,
                         tier="exact" if i % 4 == 0 else "computed")
        # The ring holds only the window; the run totals stay exact.
        assert len(stats.records) == 64
        assert stats.n_queries == 1000
        assert stats.n_exact_hits == 250
        assert stats.n_computed == 750
        assert stats.cache_hit_rate == pytest.approx(0.25)
        assert stats.mean_latency_seconds == pytest.approx(
            sum(i / 1000.0 for i in range(1000)) / 1000.0
        )

    def test_percentiles_match_brute_force_over_window(self):
        import random

        from repro.service.stats import sorted_percentile

        rng = random.Random(7)
        stats = ServiceStats(window=64)
        latencies = [rng.uniform(0.0005, 0.2) for _ in range(500)]
        for value in latencies:
            stats.record("cpt", value, False)
        window = sorted(latencies[-64:])  # brute-force sort oracle
        for q in (50.0, 90.0, 95.0, 99.0):
            assert stats.latency_percentile(q) == sorted_percentile(window, q)
        assert stats.p50_latency_seconds == sorted_percentile(window, 50.0)
        assert stats.p95_latency_seconds == sorted_percentile(window, 95.0)

    def test_sorted_cache_invalidated_by_record(self):
        stats = ServiceStats(window=8)
        stats.record("cpt", 0.010, False)
        assert stats.p50_latency_seconds == pytest.approx(0.010)
        # Reading cached a sorted view; a new record must drop it.
        stats.record("cpt", 0.002, False)
        assert stats.p50_latency_seconds == pytest.approx(0.002)
        stats.record("cpt", 0.030, False)
        assert stats.p95_latency_seconds == pytest.approx(0.030)

    def test_tier_latencies_match_oracle_and_stay_exact_on_counts(self):
        import random

        from repro.service.stats import sorted_percentile

        rng = random.Random(3)
        stats = ServiceStats(window=32)
        history = []
        for i in range(200):
            tier = ("exact", "region", "computed")[i % 3]
            value = rng.uniform(0.0001, 0.05)
            history.append((tier, value))
            stats.record("cpt", value, tier != "computed", tier=tier)
        rollup = stats.tier_latencies()
        for tier in ("exact", "region", "computed"):
            values = [v for t, v in history if t == tier]
            windowed = sorted(v for t, v in history[-32:] if t == tier)
            assert rollup[tier]["n"] == float(len(values))
            assert rollup[tier]["mean"] == pytest.approx(
                sum(values) / len(values)
            )
            assert rollup[tier]["p50"] == sorted_percentile(windowed, 50.0)
            assert rollup[tier]["p95"] == sorted_percentile(windowed, 95.0)

    def test_as_dict_reports_window_occupancy(self):
        stats = ServiceStats(window=16)
        for _ in range(40):
            stats.record("cpt", 0.001, False)
        payload = stats.as_dict()
        assert payload["window"] == {"capacity": 16, "n": 16}
        assert payload["n_queries"] == 40

    def test_seeded_records_replay_into_streaming_counters(self):
        from repro.service.stats import QueryRecord

        seeded = [QueryRecord("cpt", 0.01, False, "computed")] * 3
        stats = ServiceStats(records=seeded, window=8)
        assert stats.n_queries == 3
        assert stats.mean_latency_seconds == pytest.approx(0.01)

    def test_window_validated(self):
        with pytest.raises(ValidationError):
            ServiceStats(window=0)
