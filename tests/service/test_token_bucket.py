"""Admission-control token bucket: refill clamping, boundaries, races."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ValidationError
from repro.service import TokenBucket


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


class TestRefillClamping:
    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(1000.0)  # ~10k tokens of idle refill
        # Only the burst capacity is available, not the accumulated idle.
        assert bucket.try_acquire(3.0)
        assert not bucket.try_acquire(0.5)

    def test_refill_at_capacity_stays_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=5.0, burst=2.0, clock=clock)
        # Repeated refills at capacity must not creep past burst.
        for _ in range(10):
            clock.advance(10.0)
            assert bucket.try_acquire(0.0)  # forces a refill pass
            assert bucket._tokens <= 2.0
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire(1.0)

    def test_partial_refill_accumulates(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert bucket.try_acquire(4.0)  # drain
        clock.advance(0.25)  # +0.5 tokens
        assert not bucket.try_acquire(1.0)
        clock.advance(0.25)  # +0.5 more -> exactly 1.0
        assert bucket.try_acquire(1.0)


class TestBurstBoundary:
    def test_acquire_exact_burst_then_deny(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=5.0, clock=clock)
        assert bucket.try_acquire(5.0)  # exactly the full bucket
        assert not bucket.try_acquire(1e-9)  # empty, even epsilon denied
        clock.advance(1.0)
        assert bucket.try_acquire(1.0)
        assert not bucket.try_acquire(1e-9)

    def test_single_token_boundary(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.999)
        assert not bucket.try_acquire()
        clock.advance(0.001)
        assert bucket.try_acquire()

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValidationError):
            TokenBucket(rate=1.0, burst=0.5)


class TestConcurrency:
    def test_many_threads_never_overdraw(self):
        # Real clock; the invariant is over *grants*, not timing: with
        # rate r and burst b, grants by time T never exceed b + r*T,
        # and the token count never goes negative.
        bucket = TokenBucket(rate=200.0, burst=50.0)
        start = time.monotonic()
        grants = []
        lock = threading.Lock()
        stop = start + 0.25

        def worker():
            local = 0
            while time.monotonic() < stop:
                if bucket.try_acquire():
                    local += 1
            with lock:
                grants.append(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start
        total = sum(grants)
        assert bucket._tokens >= 0.0
        # Generous ceiling: burst + rate * elapsed (+1 for rounding).
        assert total <= 50.0 + 200.0 * elapsed + 1.0
        assert total >= 50  # at least the initial burst was served

    def test_concurrent_fake_clock_grants_are_exact(self):
        # With a frozen clock there is no refill: exactly `burst` grants
        # must succeed no matter how many threads contend.
        clock = FakeClock()
        bucket = TokenBucket(rate=1000.0, burst=32.0, clock=clock)
        granted = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            local = sum(1 for _ in range(100) if bucket.try_acquire())
            with lock:
                granted.append(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(granted) == 32
        assert bucket._tokens >= 0.0
