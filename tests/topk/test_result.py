"""Unit tests for TopKResult and CandidateList containers."""

from __future__ import annotations

import pytest

from repro import CandidateList, TopKResult
from repro.errors import AlgorithmError


class TestTopKResult:
    def test_orders_by_score_desc(self):
        result = TopKResult([(1, 0.5), (2, 0.9), (3, 0.7)])
        assert result.ids == [2, 3, 1]

    def test_tie_broken_by_ascending_id(self):
        result = TopKResult([(9, 0.5), (1, 0.5)])
        assert result.ids == [1, 9]

    def test_kth_accessors(self):
        result = TopKResult([(1, 0.9), (2, 0.4)])
        assert result.kth_id == 2
        assert result.kth_score == pytest.approx(0.4)

    def test_rank_accessors(self):
        result = TopKResult([(1, 0.9), (2, 0.4)])
        assert result.id_at(0) == 1
        assert result.score_at(1) == pytest.approx(0.4)

    def test_membership(self):
        result = TopKResult([(1, 0.9)])
        assert 1 in result and 2 not in result

    def test_duplicate_ids_rejected(self):
        with pytest.raises(AlgorithmError):
            TopKResult([(1, 0.5), (1, 0.6)])

    def test_empty_result(self):
        result = TopKResult([])
        assert len(result) == 0
        with pytest.raises(AlgorithmError):
            _ = result.kth_id

    def test_equality_by_order(self):
        assert TopKResult([(1, 0.9), (2, 0.4)]) == TopKResult([(2, 0.4), (1, 0.9)])
        assert TopKResult([(1, 0.9)]) != TopKResult([(2, 0.9)])

    def test_iteration_yields_pairs(self):
        result = TopKResult([(1, 0.9), (2, 0.4)])
        assert list(result) == [(1, 0.9), (2, 0.4)]


class TestCandidateList:
    def test_insert_keeps_score_order(self):
        candidates = CandidateList()
        candidates.insert(1, 0.3)
        candidates.insert(2, 0.8)
        candidates.insert(3, 0.5)
        assert candidates.ids == [2, 3, 1]

    def test_tie_broken_by_id(self):
        candidates = CandidateList()
        candidates.insert(9, 0.5)
        candidates.insert(2, 0.5)
        assert candidates.ids == [2, 9]

    def test_duplicate_insert_rejected(self):
        candidates = CandidateList()
        candidates.insert(1, 0.5)
        with pytest.raises(AlgorithmError):
            candidates.insert(1, 0.6)

    def test_membership_and_len(self):
        candidates = CandidateList()
        candidates.insert(4, 0.2)
        assert 4 in candidates
        assert len(candidates) == 1

    def test_remove(self):
        candidates = CandidateList()
        candidates.insert(1, 0.5)
        candidates.insert(2, 0.6)
        candidates.remove(1)
        assert candidates.ids == [2]
        with pytest.raises(AlgorithmError):
            candidates.remove(1)

    def test_top(self):
        candidates = CandidateList()
        candidates.insert(1, 0.5)
        candidates.insert(2, 0.9)
        assert candidates.top() == (2, 0.9)

    def test_top_empty_rejected(self):
        with pytest.raises(AlgorithmError):
            CandidateList().top()

    def test_score_of(self):
        candidates = CandidateList()
        candidates.insert(5, 0.44)
        assert candidates.score_of(5) == pytest.approx(0.44)
        with pytest.raises(AlgorithmError):
            candidates.score_of(6)

    def test_iteration_descending(self):
        candidates = CandidateList()
        for tid, score in [(1, 0.1), (2, 0.9), (3, 0.5)]:
            candidates.insert(tid, score)
        assert [tid for tid, _ in candidates] == [2, 3, 1]
