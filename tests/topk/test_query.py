"""Unit tests for the sparse Query vector."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Query
from repro.errors import QueryError


class TestConstruction:
    def test_dims_sorted(self):
        q = Query([5, 1, 3], [0.1, 0.2, 0.3])
        assert q.dims.tolist() == [1, 3, 5]
        assert q.weights.tolist() == [0.2, 0.3, 0.1]

    def test_qlen(self):
        assert Query([0, 1], [0.5, 0.5]).qlen == 2

    def test_from_mapping(self):
        q = Query.from_mapping({2: 0.4, 0: 0.6})
        assert q.dims.tolist() == [0, 2]
        assert q.weight_of(2) == pytest.approx(0.4)

    def test_from_dense_drops_zeros(self):
        q = Query.from_dense([0.0, 0.5, 0.0, 0.25])
        assert q.dims.tolist() == [1, 3]

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Query([], [])
        with pytest.raises(QueryError):
            Query.from_mapping({})

    def test_duplicate_dims_rejected(self):
        with pytest.raises(QueryError):
            Query([1, 1], [0.5, 0.5])

    def test_zero_weight_rejected(self):
        with pytest.raises(QueryError):
            Query([0], [0.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(QueryError):
            Query([0], [-0.5])

    def test_weight_above_one_rejected(self):
        with pytest.raises(QueryError):
            Query([0], [1.5])

    def test_negative_dim_rejected(self):
        with pytest.raises(QueryError):
            Query([-1], [0.5])

    def test_length_mismatch_rejected(self):
        with pytest.raises(QueryError):
            Query([0, 1], [0.5])


class TestAccessors:
    def test_weight_of_absent_dim_is_zero(self):
        assert Query([0], [0.5]).weight_of(7) == 0.0

    def test_has_dim(self):
        q = Query([2, 4], [0.5, 0.5])
        assert q.has_dim(2) and not q.has_dim(3)

    def test_items_order(self):
        q = Query([4, 2], [0.1, 0.9])
        assert list(q.items()) == [(2, 0.9), (4, 0.1)]

    def test_score(self):
        q = Query([0, 1], [0.8, 0.5])
        assert q.score(np.array([0.7, 0.5])) == pytest.approx(0.81)

    def test_score_wrong_length(self):
        with pytest.raises(QueryError):
            Query([0, 1], [0.5, 0.5]).score(np.array([1.0]))


class TestWithWeight:
    def test_replaces_weight(self):
        q = Query([0, 1], [0.8, 0.5]).with_weight(0, 0.3)
        assert q.weight_of(0) == pytest.approx(0.3)
        assert q.weight_of(1) == pytest.approx(0.5)

    def test_original_unchanged(self):
        q = Query([0], [0.8])
        q.with_weight(0, 0.2)
        assert q.weight_of(0) == pytest.approx(0.8)

    def test_non_query_dim_rejected(self):
        with pytest.raises(QueryError):
            Query([0], [0.8]).with_weight(1, 0.5)

    def test_zero_new_weight_rejected(self):
        with pytest.raises(QueryError):
            Query([0], [0.8]).with_weight(0, 0.0)


class TestEquality:
    def test_equal_queries(self):
        assert Query([0, 1], [0.5, 0.6]) == Query([1, 0], [0.6, 0.5])

    def test_unequal_weights(self):
        assert Query([0], [0.5]) != Query([0], [0.6])

    def test_hashable(self):
        assert len({Query([0], [0.5]), Query([0], [0.5])}) == 1

    def test_immutable_views(self):
        q = Query([0], [0.5])
        with pytest.raises(ValueError):
            q.weights[0] = 0.9
