"""Threshold Algorithm tests, including the paper's Figure 2 golden trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, InvertedIndex, Query, ThresholdAlgorithm, brute_force_topk
from repro.errors import AlgorithmError, QueryError
from repro.metrics import AccessCounters


class TestFigure2GoldenTrace:
    """The paper's Figure 2: TA execution on the running example.

    Paper tuples d1..d4 are library ids 0..3; round-robin probing.
    """

    @pytest.fixture()
    def trace(self, example_index, example_query):
        ta = ThresholdAlgorithm(
            example_index, example_query, k=2, probing="round_robin", record_trace=True
        )
        ta.run()
        return ta.outcome.trace

    def test_step1_initialisation(self, trace):
        step = trace[0]
        assert step.operation == "initialise"
        assert step.thresholds == {0: 0.8, 1: 0.8}
        assert step.threshold_score == pytest.approx(1.04)
        assert step.result_ids == [] and step.candidate_ids == []

    def test_step2_processes_d1_on_l1(self, trace):
        step = trace[1]
        assert (step.dim, step.tuple_id) == (0, 0)
        assert step.score == pytest.approx(0.8)
        assert step.threshold_score == pytest.approx(0.96)
        assert step.result_ids == [0]

    def test_step3_processes_d3_on_l2(self, trace):
        step = trace[2]
        assert (step.dim, step.tuple_id) == (1, 2)
        assert step.score == pytest.approx(0.48)
        assert step.threshold_score == pytest.approx(0.86)
        assert step.result_ids == [0, 2]

    def test_step4_processes_d2_on_l1(self, trace):
        step = trace[3]
        assert (step.dim, step.tuple_id) == (0, 1)
        assert step.score == pytest.approx(0.81)
        assert step.threshold_score == pytest.approx(0.38)
        assert step.result_ids == [1, 0]
        assert step.candidate_ids == [2]

    def test_step5_terminates(self, trace):
        assert trace[4].operation == "terminate"
        assert len(trace) == 5


class TestTAOutcome:
    def test_result_and_candidates(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=2)
        outcome = ta.run()
        assert outcome.result.ids == [1, 0]
        assert outcome.result.kth_score == pytest.approx(0.8)
        assert outcome.candidates.ids == [2]

    def test_d4_never_encountered(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=2)
        ta.run()
        assert not ta.has_seen(3)

    def test_counters_charged(self, example_index, example_query):
        counters = AccessCounters()
        ta = ThresholdAlgorithm(example_index, example_query, k=2, counters=counters)
        ta.run()
        assert counters.sorted_accesses == 3  # d1, d3, d2 pulls
        assert counters.random_accesses == 3  # one score fetch each

    def test_run_twice_rejected(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=2)
        ta.run()
        with pytest.raises(AlgorithmError):
            ta.run()

    def test_outcome_before_run_rejected(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=2)
        with pytest.raises(AlgorithmError):
            _ = ta.outcome

    def test_unknown_probing_rejected(self, example_index, example_query):
        with pytest.raises(QueryError):
            ThresholdAlgorithm(example_index, example_query, k=2, probing="nope")

    def test_sorted_access_tracking(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=2)
        ta.run()
        # d2 (id 1) was pulled from L1 via sorted access; d1 (id 0) too.
        assert ta.encountered_via_sorted_access(1, 0)
        assert ta.encountered_via_sorted_access(0, 0)
        # d1's L2 entry was never reached by sorted access.
        assert not ta.encountered_via_sorted_access(0, 1)


class TestTAAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("probing", ["round_robin", "max_impact"])
    def test_matches_exhaustive_topk(self, seed, probing):
        rng = np.random.default_rng(seed)
        dense = rng.random((60, 6)) * (rng.random((60, 6)) < 0.6)
        data = Dataset.from_dense(dense)
        eligible = [d for d in range(6) if data.column_nnz(d) > 0]
        dims = sorted(rng.choice(eligible, size=min(3, len(eligible)), replace=False))
        query = Query(dims, rng.uniform(0.2, 0.9, size=len(dims)))
        k = int(rng.integers(1, 10))
        ta = ThresholdAlgorithm(InvertedIndex(data), query, k, probing=probing)
        outcome = ta.run()
        expected = brute_force_topk(data, query, k)
        # TA only returns tuples with positive scores; compare the prefix.
        assert outcome.result.ids == expected.ids[: len(outcome.result)]
        for tid, score in outcome.result:
            assert score == pytest.approx(
                float(data.scores(query.dims, query.weights)[tid])
            )

    def test_k_larger_than_matching_tuples(self):
        data = Dataset.from_dense([[0.5, 0.0], [0.0, 0.0], [0.2, 0.0]])
        query = Query([0], [0.5])
        ta = ThresholdAlgorithm(InvertedIndex(data), query, k=5)
        outcome = ta.run()
        # Only two tuples have positive scores on the query dimension.
        assert outcome.result.ids == [0, 2]

    def test_candidates_sorted_desc(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=1)
        outcome = ta.run()
        scores = outcome.candidates.scores
        assert np.all(np.diff(scores) <= 0)


class TestResumeNext:
    def test_resume_finds_d4(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=2)
        outcome = ta.run()
        pulled = ta.resume_next()
        # Resumption should eventually surface d4 (id 3) or d3 first if unseen.
        assert pulled is not None
        tid, score = pulled
        assert tid == 3
        assert score == pytest.approx(0.8 * 0.1 + 0.5 * 0.6)
        assert 3 in outcome.candidates

    def test_resume_exhausts_to_none(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=2)
        ta.run()
        assert ta.resume_next() is not None  # d4
        assert ta.resume_next() is None
        assert ta.all_exhausted

    def test_resume_before_run_rejected(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=2)
        with pytest.raises(AlgorithmError):
            ta.resume_next()

    def test_thresholds_after_resume(self, example_index, example_query):
        ta = ThresholdAlgorithm(example_index, example_query, k=2)
        ta.run()
        while ta.resume_next() is not None:
            pass
        assert ta.threshold_score() == 0.0


class TestMaxImpactProbing:
    def test_prefers_high_impact_list(self, example_index, example_query):
        ta = ThresholdAlgorithm(
            example_index, example_query, k=2, probing="max_impact", record_trace=True
        )
        ta.run()
        trace = ta.outcome.trace
        # q1*0.8 = 0.64 > q2*0.8 = 0.4, and after pulling d1 still
        # q1*0.7 = 0.56 > 0.4: the first two pulls hit L1.
        assert trace[1].dim == 0
        assert trace[2].dim == 0
