"""Property-based tests: incremental mutation maintenance ≡ fresh rebuild.

The dynamic-data subsystem promises that after *any* sequence of
mutation batches, the incrementally maintained state — overlay rows,
patched columns, sorted-insert/tombstoned inverted lists, epoch-refreshed
subspace plans — is **bit-identical** to an index built from scratch on
:meth:`Dataset.compacted` (the same live rows re-packed into fresh CSR).

These tests hold that promise at every level: raw storage arrays, the
single-query engine on both backends and all four methods, the fused
``compute_many`` modes, and the cached :class:`QueryService` route.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import (
    METHODS,
    Dataset,
    ImmutableRegionEngine,
    InvertedIndex,
    Mutation,
    MutationBatch,
    Query,
    QueryService,
)

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Case generation: a dataset plus a deterministic mutation script.
# Opcode digits concretise against the evolving dataset state, so every
# generated batch is valid by construction while staying shrinkable.
# ----------------------------------------------------------------------


@st.composite
def mutation_case(draw, max_n=50, max_m=6, max_batch=5):
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(6, max_n))
    m = draw(st.integers(2, max_m))
    density = draw(st.floats(0.3, 1.0))
    batch_sizes = draw(
        st.lists(st.integers(1, max_batch), min_size=1, max_size=3)
    )
    op_codes = draw(
        st.lists(
            st.integers(0, 9),
            min_size=sum(batch_sizes),
            max_size=sum(batch_sizes),
        )
    )
    k = draw(st.integers(1, 6))
    return seed, n, m, density, batch_sizes, op_codes, k


def build_dataset(seed: int, n: int, m: int, density: float) -> Dataset:
    rng = np.random.default_rng(seed)
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    return Dataset.from_dense(dense)


def make_batch(rng, dataset: Dataset, op_codes) -> MutationBatch:
    """Concretise one batch of opcodes against the dataset's live state."""
    mutations = []
    for code in op_codes:
        live = [
            t for t in range(dataset.n_tuples) if t not in dataset.deleted_ids
        ]
        # Mutations within the batch land sequentially, so exclude ids
        # this batch already deleted.
        for mutation in mutations:
            if mutation.kind == "delete":
                live = [t for t in live if t != mutation.tuple_id]
        if code >= 8 and live:  # delete
            mutations.append(Mutation.delete(int(rng.choice(live))))
        elif code >= 6 or not live:  # insert
            qlen = int(rng.integers(1, dataset.n_dims + 1))
            dims = rng.choice(dataset.n_dims, size=qlen, replace=False)
            mutations.append(
                Mutation.insert(dims.tolist(), rng.uniform(0.05, 1.0, qlen))
            )
        else:  # update (value 0.0 one time in five: drop the coordinate)
            tid = int(rng.choice(live))
            dim = int(rng.integers(dataset.n_dims))
            value = 0.0 if rng.random() < 0.2 else float(rng.uniform(0.0, 1.0))
            mutations.append(Mutation.update(tid, dim, value))
    return MutationBatch(tuple(mutations))


def mutate(case):
    """Build the dataset, warm an index over it, apply every batch.

    Returns ``(index, rebuilt_index, rng)`` where the rebuilt index is a
    fresh build over the compacted (live-state) dataset.
    """
    seed, n, m, density, batch_sizes, op_codes, _ = case
    dataset = build_dataset(seed, n, m, density)
    index = InvertedIndex(dataset)
    index.warm(range(m))  # every list exists, so every list gets patched
    rng = np.random.default_rng(seed + 1)
    consumed = 0
    for size in batch_sizes:
        batch = make_batch(rng, dataset, op_codes[consumed : consumed + size])
        consumed += size
        index.apply(batch)
    return index, InvertedIndex(dataset.compacted()), rng


def draw_query(rng, dataset: Dataset, max_qlen=4):
    eligible = [
        d for d in range(dataset.n_dims) if dataset.column_nnz(d) > 0
    ]
    assume(len(eligible) >= 2)
    qlen = min(max_qlen, len(eligible))
    dims = sorted(rng.choice(eligible, size=qlen, replace=False).tolist())
    return Query(dims, rng.uniform(0.2, 0.9, size=qlen))


# ----------------------------------------------------------------------
# Comparison helpers (answer + counters; see test_backend_parity for the
# same shape over backends)
# ----------------------------------------------------------------------


def bound_repr(bound):
    return (bound.delta, bound.kind, bound.rising_id, bound.falling_id)


def sequence_repr(sequence):
    return (
        tuple(
            (bound_repr(r.lower), bound_repr(r.upper), r.result_ids)
            for r in sequence.regions
        ),
        sequence.current_index,
    )


def answer_repr(computation):
    """The query's *answer*: result and full region sequences."""
    return {
        "result": computation.result.ids,
        "sequences": {
            dim: sequence_repr(seq) for dim, seq in computation.sequences.items()
        },
    }


def computation_repr(computation):
    """Answer plus every simulated counter — the full bit-parity check."""
    metrics = computation.metrics
    evals = metrics.evals
    return {
        **answer_repr(computation),
        "ta_access": (
            metrics.ta_access.sorted_accesses,
            metrics.ta_access.random_accesses,
        ),
        "region_access": (
            metrics.region_access.sorted_accesses,
            metrics.region_access.random_accesses,
        ),
        "evals": (
            evals.evaluated_candidates,
            evals.result_comparisons,
            evals.termination_checks,
            evals.pruned_candidates,
            evals.phase3_tuples,
        ),
        "evaluated_per_dim": metrics.evaluated_per_dim,
        "candidates_total": metrics.candidates_total,
        "cl_union_size": metrics.cl_union_size,
    }


# ----------------------------------------------------------------------
# Storage-level parity
# ----------------------------------------------------------------------


@given(case=mutation_case())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_storage_state_matches_rebuild(case):
    """Lists, columns, and CSR arrays are bit-identical to a fresh build."""
    index, rebuilt, _ = mutate(case)
    dataset, fresh_data = index.dataset, rebuilt.dataset
    assert dataset.n_tuples == fresh_data.n_tuples
    assert dataset.nnz == fresh_data.nnz
    for dim in range(dataset.n_dims):
        patched = index.list_for(dim)
        built = rebuilt.list_for(dim)
        assert np.array_equal(patched.ids, built.ids)
        assert np.array_equal(patched.values, built.values)
        assert patched.size == built.size
        col_ids, col_vals = dataset.column(dim)
        fresh_ids, fresh_vals = fresh_data.column(dim)
        assert np.array_equal(col_ids, fresh_ids)
        assert np.array_equal(col_vals, fresh_vals)
        # position_of agrees over every live id (the lookup tables are
        # rebuilt lazily after mutations).
        for tid in col_ids.tolist():
            assert patched.position_of(tid) == built.position_of(tid)
    for ours, theirs in zip(dataset.csr_arrays, fresh_data.csr_arrays):
        assert np.array_equal(ours, theirs)


@pytest.mark.parametrize("method", METHODS)
@given(case=mutation_case(), phi=st.integers(0, 1))
@settings(**SETTINGS)
def test_engine_parity_after_mutations(case, phi, method):
    """compute() on the patched index ≡ compute() on a fresh rebuild.

    Full bit-parity: regions, bounds, provenance, and every access and
    evaluation counter, on both backends.
    """
    index, rebuilt, rng = mutate(case)
    k = case[-1]
    query = draw_query(rng, index.dataset)
    for backend in ("scalar", "vector"):
        incremental = ImmutableRegionEngine(index, method=method, backend=backend)
        fresh = ImmutableRegionEngine(rebuilt, method=method, backend=backend)
        assert computation_repr(
            incremental.compute(query, k, phi=phi)
        ) == computation_repr(fresh.compute(query, k, phi=phi))


@pytest.mark.parametrize("topk_mode", ["ta", "matmul"])
@given(case=mutation_case(), phi=st.integers(0, 1))
@settings(**SETTINGS)
def test_compute_many_parity_after_mutations(case, phi, topk_mode):
    """Batched execution over the patched index ≡ over a fresh rebuild.

    The ta mode must match on counters too; matmul on the answer (its
    counters are not simulated by design).
    """
    index, rebuilt, rng = mutate(case)
    k = case[-1]
    queries = [draw_query(rng, index.dataset) for _ in range(3)]
    incremental = ImmutableRegionEngine(index, method="cpt")
    fresh = ImmutableRegionEngine(rebuilt, method="cpt")
    ours = incremental.compute_many(queries, k, phi=phi, topk_mode=topk_mode)
    theirs = fresh.compute_many(queries, k, phi=phi, topk_mode=topk_mode)
    compare = computation_repr if topk_mode == "ta" else answer_repr
    for mine, other in zip(ours, theirs):
        assert compare(mine) == compare(other)


@given(case=mutation_case(max_n=40))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_cached_service_route_matches_rebuild(case):
    """A warm service that lived through the mutations answers like a
    cold service on the rebuilt data.

    The cache is seeded *before* the mutations, so surviving entries are
    served straight from the delta test's verdict — their answers must
    still be the rebuild's answers.
    """
    seed, n, m, density, batch_sizes, op_codes, k = case
    dataset = build_dataset(seed, n, m, density)
    index = InvertedIndex(dataset)
    index.warm(range(m))
    rng = np.random.default_rng(seed + 1)
    with QueryService(index, executor="sequential") as service:
        base = draw_query(rng, dataset)
        queries = [base] + [
            Query(base.dims, rng.uniform(0.2, 0.9, size=base.qlen))
            for _ in range(3)
        ]
        service.run_batch(queries, k)  # seed the cache pre-mutation
        consumed = 0
        for size in batch_sizes:
            batch = make_batch(rng, dataset, op_codes[consumed : consumed + size])
            consumed += size
            service.apply_mutations(batch)
        live_queries = [
            q
            for q in queries
            if all(dataset.column_nnz(int(d)) > 0 for d in q.dims)
        ]
        assume(live_queries)
        with QueryService(dataset.compacted(), executor="sequential") as cold:
            for query in live_queries:
                assert answer_repr(service.execute(query, k)) == answer_repr(
                    cold.execute(query, k)
                )
