"""Property-based tests: the sharded engine is bit-identical to the oracle.

:class:`~repro.core.distributed.DistributedEngine` promises the *exact*
output of the single-index engine — results, scores, region sequences,
bound kinds and provenance ids, domain bounds — for every shard count,
every method, both kernel backends, and across interleaved mutations.
The shard-skip certificates are exact IEEE-754 arguments, not
tolerances, so the comparison here is ``==`` on floats, never
``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BACKENDS,
    METHODS,
    Dataset,
    DistributedEngine,
    ImmutableRegionEngine,
    InvertedIndex,
    Mutation,
    MutationBatch,
    Query,
    ShardedIndex,
)

SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SHARD_COUNTS = (1, 2, 4, 7)


@st.composite
def dataset_and_workload(draw, max_n=70, max_m=6, max_k=6):
    """A random sparse dataset plus a workload mixing dims signatures."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(8, max_n))
    m = draw(st.integers(2, max_m))
    density = draw(st.floats(0.3, 1.0))
    rng = np.random.default_rng(seed)
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    data = Dataset.from_dense(dense)
    eligible = [d for d in range(m) if data.column_nnz(d) > 0]
    if len(eligible) < 2:
        dense[:, :2] = rng.random((n, 2))
        data = Dataset.from_dense(dense)
        eligible = [d for d in range(m) if data.column_nnz(d) > 0]
    n_signatures = draw(st.integers(1, 3))
    queries_per_signature = draw(st.integers(1, 3))
    queries = []
    for _ in range(n_signatures):
        qlen = int(rng.integers(2, min(4, len(eligible)) + 1))
        dims = sorted(rng.choice(eligible, size=qlen, replace=False).tolist())
        for _ in range(queries_per_signature):
            queries.append(Query(dims, rng.uniform(0.2, 0.9, size=qlen)))
    rng.shuffle(queries)
    k = draw(st.integers(1, max_k))
    return dense, queries, k


def bound_repr(bound):
    return (bound.delta, bound.kind, bound.rising_id, bound.falling_id)


def sequence_repr(sequence):
    return (
        tuple(
            (bound_repr(r.lower), bound_repr(r.upper), r.result_ids)
            for r in sequence.regions
        ),
        sequence.current_index,
    )


def region_repr(computation):
    """Everything the sharded path promises bit-identical."""
    return {
        "result": computation.result.ids,
        "scores": [float(s) for s in computation.result.scores],
        "sequences": {
            dim: sequence_repr(seq) for dim, seq in computation.sequences.items()
        },
        "reorder_counts": computation.metrics.evals.result_comparisons,
        "epoch": computation.epoch,
    }


def assert_parity(dense, queries, k, phi, method, backend, shard_executor="sequential"):
    oracle = ImmutableRegionEngine(
        InvertedIndex(Dataset.from_dense(dense)), method=method, backend=backend
    )
    reference = [
        region_repr(c)
        for c in oracle.compute_many(queries, k, phi=phi, topk_mode="matmul")
    ]
    for n_shards in SHARD_COUNTS:
        sharded = ShardedIndex(Dataset.from_dense(dense), n_shards)
        engine = DistributedEngine(
            sharded,
            method=method,
            shard_executor=shard_executor,
            backend=backend,
        )
        try:
            batch = engine.compute_many(queries, k, phi=phi, topk_mode="matmul")
            assert len(batch) == len(queries)
            for ref, got in zip(reference, batch):
                assert ref == region_repr(got), (n_shards, method, backend)
        finally:
            engine.close()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", METHODS)
@given(case=dataset_and_workload(), phi=st.sampled_from((0, 1)))
@settings(**SETTINGS)
def test_sharded_matches_oracle(case, phi, method, backend):
    """All shard counts × methods × backends × φ reproduce the oracle."""
    dense, queries, k = case
    assert_parity(dense, queries, k, phi, method, backend)


@given(case=dataset_and_workload(), executor=st.sampled_from(("sequential", "thread")))
@settings(**SETTINGS)
def test_shard_executors_agree(case, executor):
    """The concurrent fan-out path is order-identical to the sequential one."""
    dense, queries, k = case
    assert_parity(dense, queries, k, 0, "cpt", "vector", shard_executor=executor)


@given(case=dataset_and_workload())
@settings(**SETTINGS)
def test_parity_under_interleaved_mutations(case):
    """Sharded and single-index stay in lockstep across mutation batches."""
    dense, queries, k = case
    rng = np.random.default_rng(int(np.asarray(dense).sum() * 1e6) % 2**32)
    sharded = ShardedIndex(Dataset.from_dense(dense), 4)
    engine = DistributedEngine(sharded, method="cpt")
    oracle = ImmutableRegionEngine(InvertedIndex(Dataset.from_dense(dense)))
    live = list(range(sharded.dataset.n_tuples))
    try:
        for _ in range(2):
            reference = oracle.compute_many(queries, k, topk_mode="matmul")
            batch = engine.compute_many(queries, k, topk_mode="matmul")
            for ref, got in zip(reference, batch):
                assert region_repr(ref) == region_repr(got)
            m = sharded.dataset.n_dims
            target = int(live[int(rng.integers(0, len(live)))])
            victim = int(live[int(rng.integers(0, len(live)))])
            live.remove(victim)
            live.append(sharded.dataset.n_tuples)  # the insert's new id
            mutations = MutationBatch(
                (
                    Mutation.update(
                        target, int(rng.integers(0, m)), float(rng.uniform(0.1, 1.0))
                    ),
                    Mutation.delete(victim),
                    Mutation.insert(
                        [0, m - 1], rng.uniform(0.1, 1.0, size=2).tolist()
                    ),
                )
            )
            sharded.apply(mutations)
            sharded.drop_stale_plans()
            oracle.index.apply(mutations)
            oracle.index.plans.drop_stale()
            assert sharded.epoch == oracle.index.epoch
    finally:
        engine.close()


@given(case=dataset_and_workload())
@settings(**SETTINGS)
def test_duplicate_queries_share_one_computation(case):
    """Duplicates within a batch map to the very same computation object."""
    dense, queries, k = case
    engine = DistributedEngine(ShardedIndex(Dataset.from_dense(dense), 3))
    try:
        doubled = list(queries) + list(queries)
        batch = engine.compute_many(doubled, k, topk_mode="matmul")
        for first, second in zip(batch[: len(queries)], batch[len(queries) :]):
            assert first is second
    finally:
        engine.close()


def test_ta_mode_delegates_to_oracle_with_counters():
    """topk_mode="ta" runs unsharded with fully simulated counters."""
    rng = np.random.default_rng(7)
    dense = rng.random((40, 5))
    engine = DistributedEngine(ShardedIndex(Dataset.from_dense(dense), 4))
    oracle = ImmutableRegionEngine(InvertedIndex(Dataset.from_dense(dense)))
    query = Query([0, 2], [0.6, 0.4])
    try:
        got = engine.compute_many([query], 5, topk_mode="ta")[0]
        ref = oracle.compute_many([query], 5, topk_mode="ta")[0]
        assert region_repr(ref) == region_repr(got)
        assert got.metrics.counters_simulated
        assert (
            got.metrics.ta_access.sorted_accesses
            == ref.metrics.ta_access.sorted_accesses
        )
    finally:
        engine.close()


def test_custom_boundaries_keep_parity():
    """Parity is layout-independent: a skewed fence answers like the oracle."""
    rng = np.random.default_rng(3)
    dense = rng.random((30, 4))
    queries = [Query([0, 2], [0.8, 0.3]), Query([1, 3], [0.5, 0.6])]
    oracle = ImmutableRegionEngine(InvertedIndex(Dataset.from_dense(dense)))
    reference = [
        region_repr(c) for c in oracle.compute_many(queries, 4, topk_mode="matmul")
    ]
    sharded = ShardedIndex(
        Dataset.from_dense(dense), 3, boundaries=[0, 4, 18, 30]
    )
    engine = DistributedEngine(sharded)
    try:
        batch = engine.compute_many(queries, 4, topk_mode="matmul")
        assert reference == [region_repr(c) for c in batch]
    finally:
        engine.close()


def test_more_shards_than_rows():
    """Zero-row shards are inert — parity holds even when S > n."""
    rng = np.random.default_rng(11)
    dense = rng.random((5, 3))
    queries = [Query([0, 2], [0.8, 0.3])]
    assert_parity(dense, queries, 3, 0, "cpt", "vector")
    engine = DistributedEngine(ShardedIndex(Dataset.from_dense(dense), 9))
    oracle = ImmutableRegionEngine(InvertedIndex(Dataset.from_dense(dense)))
    try:
        got = engine.compute_many(queries, 3, topk_mode="matmul")[0]
        ref = oracle.compute_many(queries, 3, topk_mode="matmul")[0]
        assert region_repr(ref) == region_repr(got)
    finally:
        engine.close()
