"""Property tests of the *meaning* of regions: re-running the query agrees.

For any deviation inside a region, recomputing the top-k from scratch must
give exactly the region's annotated result; just past an (open) crossing
bound it must give the neighbouring region's result.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Query, brute_force_topk, compute_immutable_regions

from .test_method_agreement import dataset_query_k

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def recompute_topk(data, query, k, dim, delta):
    weight = query.weight_of(dim) + delta
    if not 0.0 < weight <= 1.0:
        return None
    return brute_force_topk(data, query.with_weight(dim, weight), k).ids


class TestInsideRegion:
    @given(case=dataset_query_k(max_n=50))
    @settings(**SETTINGS)
    def test_result_constant_inside_current_region(self, case):
        data, query, k = case
        computation = compute_immutable_regions(data, query, k, method="cpt")
        for dim in (int(d) for d in query.dims):
            region = computation.region(dim)
            for fraction in (0.1, 0.5, 0.9):
                delta = region.lower.delta + fraction * region.width
                if not region.contains(delta):
                    continue
                ids = recompute_topk(data, query, k, dim, delta)
                if ids is None:
                    continue
                assert ids == list(region.result_ids)

    @given(case=dataset_query_k(max_n=35), phi=st.integers(1, 3))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_phi_region_annotation_correct(self, case, phi):
        data, query, k = case
        computation = compute_immutable_regions(data, query, k, method="cpt", phi=phi)
        for dim in (int(d) for d in query.dims):
            for region in computation.sequence(dim):
                mid = (region.lower.delta + region.upper.delta) / 2.0
                if not region.contains(mid):
                    continue
                ids = recompute_topk(data, query, k, dim, mid)
                if ids is None:
                    continue
                assert ids == list(region.result_ids)


class TestPastBound:
    @given(case=dataset_query_k(max_n=50))
    @settings(**SETTINGS)
    def test_region_is_maximal(self, case):
        """Just past a crossing bound the top-k differs (the region is the
        *widest* preserving range, not merely a safe one)."""
        data, query, k = case
        computation = compute_immutable_regions(data, query, k, method="cpt")
        base = computation.result.ids
        eps = 1e-9
        for dim in (int(d) for d in query.dims):
            region = computation.region(dim)
            if not region.upper.closed:
                # Nudge past the crossing proportionally to its magnitude.
                delta = region.upper.delta + max(eps, abs(region.upper.delta) * 1e-9)
                ids = recompute_topk(data, query, k, dim, delta * (1 + 1e-12))
                if ids is not None and ids == base:
                    # Floating point may need a slightly larger nudge.
                    ids = recompute_topk(data, query, k, dim, region.upper.delta + 1e-6)
                    if ids is None:
                        continue
                    # A 1e-6 nudge may legitimately cross into deeper regions,
                    # but it must not still equal the base result unless the
                    # crossing sits further than 1e-6 past the bound.
                    if ids == base:
                        continue
                assert ids is None or ids != base or region.upper.closed


class TestWidthSanity:
    @given(case=dataset_query_k())
    @settings(**SETTINGS)
    def test_region_nonnegative_width_and_contains_zero(self, case):
        data, query, k = case
        computation = compute_immutable_regions(data, query, k, method="cpt")
        for dim in (int(d) for d in query.dims):
            region = computation.region(dim)
            assert region.width >= 0.0
            assert region.lower.delta <= 0.0 <= region.upper.delta

    @given(case=dataset_query_k())
    @settings(**SETTINGS)
    def test_composition_only_regions_at_least_as_wide(self, case):
        """Ignoring reorderings can only widen the current region (§7.4)."""
        data, query, k = case
        strict = compute_immutable_regions(
            data, query, k, method="cpt", count_reorderings=True
        )
        loose = compute_immutable_regions(
            data, query, k, method="cpt", count_reorderings=False
        )
        for dim in (int(d) for d in query.dims):
            assert (
                loose.region(dim).lower.delta
                <= strict.region(dim).lower.delta + 1e-12
            )
            assert (
                loose.region(dim).upper.delta
                >= strict.region(dim).upper.delta - 1e-12
            )
