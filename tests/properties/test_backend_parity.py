"""Property-based tests: the vector backend is bit-identical to scalar.

The ``backend="vector"`` fast path (:mod:`repro.kernels`) restructures the
hot loops around array operations but promises the *exact* behaviour of
the scalar reference implementation: identical region sequences (bounds,
kinds, provenance, per-region results), identical access-counter totals,
identical evaluation counters, and identical TA traces.  These tests hold
that promise over randomized datasets, queries, methods, φ values, both
probing strategies, and both storage models.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    METHODS,
    AccessCounters,
    Dataset,
    ImmutableRegionEngine,
    InvertedIndex,
    Query,
    QueryService,
)
from repro.storage.tuple_store import TupleStore
from repro.topk.ta import ThresholdAlgorithm

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def dataset_query_k(draw, max_n=70, max_m=6, max_k=8):
    """A random sparse dataset with a valid query over it."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(5, max_n))
    m = draw(st.integers(2, max_m))
    density = draw(st.floats(0.25, 1.0))
    rng = np.random.default_rng(seed)
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    data = Dataset.from_dense(dense)
    eligible = [d for d in range(m) if data.column_nnz(d) > 0]
    if len(eligible) < 2:
        dense[:, :2] = rng.random((n, 2))
        data = Dataset.from_dense(dense)
        eligible = [d for d in range(m) if data.column_nnz(d) > 0]
    qlen = draw(st.integers(2, min(4, len(eligible))))
    dims = sorted(rng.choice(eligible, size=qlen, replace=False).tolist())
    weights = rng.uniform(0.2, 0.9, size=qlen)
    k = draw(st.integers(1, max_k))
    return data, Query(dims, weights), k


def bound_repr(bound):
    return (bound.delta, bound.kind, bound.rising_id, bound.falling_id)


def sequence_repr(sequence):
    return (
        tuple(
            (bound_repr(r.lower), bound_repr(r.upper), r.result_ids)
            for r in sequence.regions
        ),
        sequence.current_index,
    )


def computation_repr(computation):
    metrics = computation.metrics
    evals = metrics.evals
    return {
        "result": computation.result.ids,
        "sequences": {
            dim: sequence_repr(seq) for dim, seq in computation.sequences.items()
        },
        "ta_access": (
            metrics.ta_access.sorted_accesses,
            metrics.ta_access.random_accesses,
        ),
        "region_access": (
            metrics.region_access.sorted_accesses,
            metrics.region_access.random_accesses,
        ),
        "evals": (
            evals.evaluated_candidates,
            evals.result_comparisons,
            evals.termination_checks,
            evals.pruned_candidates,
            evals.phase3_tuples,
        ),
        "evaluated_per_dim": metrics.evaluated_per_dim,
        "candidates_total": metrics.candidates_total,
        "cl_union_size": metrics.cl_union_size,
    }


@pytest.mark.parametrize("method", METHODS)
@given(case=dataset_query_k(), phi=st.integers(0, 2))
@settings(**SETTINGS)
def test_backends_produce_identical_computations(case, phi, method):
    """Regions, bounds, provenance, and every counter agree across backends."""
    data, query, k = case
    reprs = []
    for backend in ("scalar", "vector"):
        engine = ImmutableRegionEngine(
            InvertedIndex(data), method=method, backend=backend
        )
        reprs.append(computation_repr(engine.compute(query, k, phi=phi)))
    assert reprs[0] == reprs[1]


@given(
    case=dataset_query_k(),
    cache_rows=st.booleans(),
    count_reorderings=st.booleans(),
    probing=st.sampled_from(["round_robin", "max_impact"]),
)
@settings(**SETTINGS)
def test_backends_agree_across_modes(case, cache_rows, count_reorderings, probing):
    """Parity holds in the main-memory model and composition-only mode too."""
    data, query, k = case
    reprs = []
    for backend in ("scalar", "vector"):
        engine = ImmutableRegionEngine(
            InvertedIndex(data),
            method="cpt",
            probing=probing,
            count_reorderings=count_reorderings,
            cache_rows=cache_rows,
            backend=backend,
        )
        reprs.append(computation_repr(engine.compute(query, k)))
    assert reprs[0] == reprs[1]


@given(
    case=dataset_query_k(),
    probing=st.sampled_from(["round_robin", "max_impact"]),
    cache_rows=st.booleans(),
)
@settings(**SETTINGS)
def test_ta_traces_and_resumption_identical(case, probing, cache_rows):
    """Step-by-step TA traces and post-run resumption agree across backends."""
    data, query, k = case
    outcomes = {}
    for backend in ("scalar", "vector"):
        counters = AccessCounters()
        store = TupleStore(data, counters, cache_rows=cache_rows)
        ta = ThresholdAlgorithm(
            InvertedIndex(data),
            query,
            k,
            counters=counters,
            store=store,
            probing=probing,
            record_trace=True,
            backend=backend,
        )
        outcome = ta.run()
        resumed = [ta.resume_next() for _ in range(3)]
        outcomes[backend] = (outcome, counters, resumed)
    scalar, vector = outcomes["scalar"], outcomes["vector"]
    assert list(scalar[0].result) == list(vector[0].result)
    assert list(scalar[0].candidates) == list(vector[0].candidates)
    assert scalar[0].sorted_access_depths == vector[0].sorted_access_depths
    assert (scalar[1].sorted_accesses, scalar[1].random_accesses) == (
        vector[1].sorted_accesses,
        vector[1].random_accesses,
    )
    assert scalar[2] == vector[2]
    assert scalar[0].trace is not None and vector[0].trace is not None
    assert len(scalar[0].trace) == len(vector[0].trace)
    for step_s, step_v in zip(scalar[0].trace, vector[0].trace):
        assert step_s == step_v


@given(case=dataset_query_k(max_n=40))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_service_backends_interchangeable(case):
    """A QueryService pinned to either backend answers identically."""
    data, query, k = case
    results = []
    for backend in ("scalar", "vector"):
        with QueryService(data, executor="sequential", backend=backend) as service:
            computation = service.execute(query, k)
            results.append(computation_repr(computation))
    assert results[0] == results[1]
