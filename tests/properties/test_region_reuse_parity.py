"""Property-based tests: region-tier answers are bit-identical to computes.

The region-aware cache tier serves a query that deviates from a cached
anchor in exactly one dimension's weight — strictly inside one of that
dimension's stored immutable regions — without running the engine.  Its
contract (ISSUE 5):

* the served answer is **bit-identical** to a fresh engine computation
  at the perturbed weights: result ids *and order*, result scores, the
  containing region's bounds after re-basing (delta values, bound
  kinds, rising/falling provenance), and — for φ>0 — the selection of
  the containing region in the sequence, across both backends and both
  topk modes;
* membership exactly honours the open(crossing)/closed(domain) endpoint
  semantics of :meth:`ImmutableRegion.contains`: a query sitting
  exactly on a crossing bound must *not* be served (the result is in
  transition there), while a weight at a closed domain bound is;
* a served view populates only the proven dimension's sequence and
  carries :class:`ReuseProvenance`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    ImmutableRegionEngine,
    InvertedIndex,
    Query,
    QueryService,
)
from repro.core.regions import BoundKind
from repro.service.cache import region_cache_key

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_dataset(seed: int, n: int, m: int, density: float) -> Dataset:
    rng = np.random.default_rng(seed)
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    return Dataset.from_dense(dense)


@st.composite
def reuse_case(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(40, 160))
    m = draw(st.integers(4, 7))
    density = draw(st.floats(0.5, 0.95))
    k = draw(st.integers(2, 6))
    phi = draw(st.sampled_from([0, 1]))
    backend = draw(st.sampled_from(["scalar", "vector"]))
    topk_mode = draw(st.sampled_from(["ta", "matmul"]))
    count_reorderings = draw(st.booleans())
    region_pick = draw(st.floats(0.05, 0.95))
    offset = draw(st.floats(0.1, 0.9))
    return (
        seed, n, m, density, k, phi, backend, topk_mode,
        count_reorderings, region_pick, offset,
    )


def assert_bounds_equal(served, fresh, context):
    for name, a, b in (
        ("lower", served.lower, fresh.lower),
        ("upper", served.upper, fresh.upper),
    ):
        assert a.delta == b.delta, (name, context, a, b)
        assert a.kind == b.kind, (name, context, a, b)
        assert a.rising_id == b.rising_id, (name, context, a, b)
        assert a.falling_id == b.falling_id, (name, context, a, b)


@given(case=reuse_case())
@settings(**SETTINGS)
def test_region_hit_bit_identical_to_fresh_compute(case):
    """A region-tier answer equals a fresh engine run at the new weights."""
    (
        seed, n, m, density, k, phi, backend, topk_mode,
        count_reorderings, region_pick, offset,
    ) = case
    dataset = build_dataset(seed, n, m, density)
    rng = np.random.default_rng(seed + 17)
    eligible = [d for d in range(m) if dataset.column_nnz(d) > 0]
    assume(len(eligible) >= 3)
    dims = sorted(rng.choice(eligible, size=3, replace=False).tolist())
    anchor_query = Query(dims, rng.uniform(0.25, 0.85, size=3))

    service = QueryService(
        dataset,
        executor="sequential",
        backend=backend,
        topk_mode=topk_mode,
        count_reorderings=count_reorderings,
        reuse="region",
    )
    anchor = service.execute(anchor_query, k, phi)
    assert anchor.reuse is None

    dim_pos = int(rng.integers(3))
    dim = int(anchor_query.dims[dim_pos])
    sequence = anchor.sequences[dim]
    region_index = min(
        int(region_pick * len(sequence.regions)), len(sequence.regions) - 1
    )
    region = sequence.regions[region_index]
    lo, hi = region.weight_interval
    assume(hi > lo)
    w_new = lo + offset * (hi - lo)
    assume(0.0 < w_new <= 1.0)
    assume(region.contains_weight(w_new))
    assume(w_new != float(anchor_query.weights[dim_pos]))
    perturbed = anchor_query.with_weight(dim, w_new)

    served = service.execute(perturbed, k, phi)
    assert served.reuse is not None, "expected a region hit"
    assert served.reuse.dim == dim
    assert served.reuse.region_index == region_index
    assert served.epoch == anchor.epoch
    # Only the proven dimension's sequence is populated.
    assert set(served.sequences) == {dim}
    assert not served.metrics.counters_simulated

    fresh = ImmutableRegionEngine(
        InvertedIndex(dataset),
        method="cpt",
        backend=backend,
        count_reorderings=count_reorderings,
    ).compute(perturbed, k, phi=phi)

    # Result ids, order, and scores are bit-identical.
    assert served.result.ids == fresh.result.ids
    assert np.array_equal(served.result.scores, fresh.result.scores)
    # The containing region (the served sequence's current) matches the
    # fresh current region bit for bit, provenance included — for φ>0
    # this also checks the sequence selection landed on the region whose
    # annotated result holds at the new weight.
    assert_bounds_equal(
        served.sequences[dim].current,
        fresh.sequences[dim].current,
        context=(k, phi, backend, topk_mode, dim, region_index),
    )
    assert (
        served.sequences[dim].current.result_ids
        == fresh.sequences[dim].current.result_ids
    )


@given(case=reuse_case())
@settings(**SETTINGS)
def test_membership_honours_contains_endpoint_semantics(case):
    """Exactly on a crossing bound: no region hit.  Closed domain end: hit."""
    seed, n, m, density, k, phi, backend, topk_mode, _, region_pick, _ = case
    dataset = build_dataset(seed, n, m, density)
    rng = np.random.default_rng(seed + 23)
    eligible = [d for d in range(m) if dataset.column_nnz(d) > 0]
    assume(len(eligible) >= 2)
    dims = sorted(rng.choice(eligible, size=2, replace=False).tolist())
    anchor_query = Query(dims, rng.uniform(0.3, 0.8, size=2))

    service = QueryService(
        dataset,
        executor="sequential",
        backend=backend,
        topk_mode=topk_mode,
        reuse="region",
    )
    anchor = service.execute(anchor_query, k, phi)
    dim_pos = int(rng.integers(2))
    dim = int(anchor_query.dims[dim_pos])
    sequence = anchor.sequences[dim]
    region_index = min(
        int(region_pick * len(sequence.regions)), len(sequence.regions) - 1
    )
    region = sequence.regions[region_index]

    for bound in (region.lower, region.upper):
        # Membership is decided on ``w_new - anchor_weight``; to probe the
        # endpoint we need a weight whose difference recovers the bound's
        # delta *bitwise* (``weight + delta`` alone may round off it).
        candidates = [region.weight + bound.delta]
        up = down = candidates[0]
        for _ in range(3):
            up = np.nextafter(up, np.inf)
            down = np.nextafter(down, -np.inf)
            candidates.extend([up, down])
        w_edge = next(
            (
                w
                for w in candidates
                if w - region.weight == bound.delta and 0.0 < w <= 1.0
            ),
            None,
        )
        if w_edge is None or w_edge == float(anchor_query.weights[dim_pos]):
            continue
        # Probe against the anchor entry alone: a previous probe's
        # computation is itself a legitimate serving anchor and would
        # muddy the endpoint claim.
        service.cache.clear()
        service.execute(anchor_query, k, phi)
        served = service.execute(
            anchor_query.with_weight(dim, w_edge), k, phi
        )
        if bound.closed:
            # Domain ends are attainable: served from the region, with
            # the region's annotated result.
            assert served.reuse is not None
            assert served.result.ids == list(region.result_ids)
        else:
            # Crossing bounds are open — the result is in transition
            # exactly there; no stored region of this entry contains the
            # deviation, so the query must be computed, never served.
            assert served.reuse is None


@pytest.mark.parametrize("phi", [0, 1])
def test_view_neighbour_derivation_matches_fresh(phi):
    """derive_neighbour_result works on served views (oriented provenance)."""
    dataset = build_dataset(3, 120, 5, 0.8)
    service = QueryService(dataset, executor="sequential", reuse="region")
    rng = np.random.default_rng(5)
    query = Query([0, 2, 4], rng.uniform(0.3, 0.8, 3))
    k = 4
    anchor = service.execute(query, k, phi)
    dim = 2
    region = anchor.sequences[dim].current
    lo, hi = region.weight_interval
    w_new = lo + 0.5 * (hi - lo)
    if not region.contains_weight(w_new) or w_new == query.weight_of(dim):
        pytest.skip("degenerate region draw")
    served = service.execute(query.with_weight(dim, w_new), k, phi)
    assert served.reuse is not None
    fresh = ImmutableRegionEngine(InvertedIndex(dataset)).compute(
        query.with_weight(dim, w_new), k, phi=phi
    )
    assert served.next_result_above(dim) == fresh.next_result_above(dim)
    assert served.next_result_below(dim) == fresh.next_result_below(dim)


def test_region_key_groups_share_all_but_one_dim():
    """Sanity: reuse requires matching every other dimension exactly."""
    dataset = build_dataset(7, 100, 5, 0.8)
    service = QueryService(dataset, executor="sequential", reuse="region")
    query = Query([0, 1, 2], [0.5, 0.6, 0.4])
    anchor = service.execute(query, 3)
    region = anchor.sequences[1].current
    lo, hi = region.weight_interval
    w_new = lo + 0.5 * (hi - lo)
    if not region.contains_weight(w_new):
        pytest.skip("degenerate region draw")
    # Same perturbation of dim 1, but dim 0's weight differs too: the
    # entry cannot prove anything about a two-dimension move.
    two_dim_move = Query([0, 1, 2], [0.51, w_new, 0.4])
    served = service.execute(two_dim_move, 3)
    assert served.reuse is None
