"""Property-based tests: the delta test's verdicts are semantically sound.

:func:`repro.service.invalidation.computation_survives` judges whether a
cached region computation survives a data mutation.  Its contract:

* **valid** ⇒ the cached answer *is* the answer on the mutated data —
  at the current weights and at every deviation inside every cached
  region, the brute-force top-k of the mutated dataset equals the
  region's stored result (oracle = full rescore, no index, no cache);
* **evicted** ⇒ no claim — the entry recomputes on next touch, to a
  possibly different region; the recomputation must agree with the
  brute oracle on the mutated data.

The oracle evaluates perturbed queries by *re-scoring from scratch*
(``Query.with_weight`` + :func:`brute_force_topk`), a completely
different code path from the Lemma 1 half-space arithmetic under test.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    ImmutableRegionEngine,
    InvertedIndex,
    Query,
    brute_force_topk,
)
from repro.service.invalidation import computation_survives

from .test_mutation_parity import build_dataset, draw_query, make_batch

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def semantics_case(draw):
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(8, 60))
    m = draw(st.integers(2, 6))
    density = draw(st.floats(0.3, 1.0))
    n_ops = draw(st.integers(1, 4))
    op_codes = draw(
        st.lists(st.integers(0, 9), min_size=n_ops, max_size=n_ops)
    )
    k = draw(st.integers(1, 6))
    phi = draw(st.integers(0, 1))
    return seed, n, m, density, op_codes, k, phi


def region_probe_points(region):
    """Deviations inside *region* worth probing (endpoints stay out:
    at a crossing the result is in transition)."""
    lo, hi = region.lower.delta, region.upper.delta
    if hi <= lo:
        return []
    points = [lo + (hi - lo) * f for f in (0.25, 0.5, 0.75)]
    if region.contains(0.0):
        points.append(0.0)
    return [p for p in points if region.contains(p)]


@given(case=semantics_case())
@settings(**SETTINGS)
def test_delta_test_verdicts_are_sound(case):
    seed, n, m, density, op_codes, k, phi = case
    dataset = build_dataset(seed, n, m, density)
    index = InvertedIndex(dataset)
    index.warm(range(m))
    rng = np.random.default_rng(seed + 7)
    query = draw_query(rng, dataset)
    engine = ImmutableRegionEngine(index, method="cpt")
    computation = engine.compute(query, k, phi=phi)

    batch = make_batch(rng, dataset, op_codes)
    deltas = index.apply(batch)
    mutated = dataset.compacted()

    if computation_survives(computation, deltas, dataset):
        # Valid ⇒ identical top-k throughout every cached region.
        for dim, sequence in computation.sequences.items():
            weight = query.weight_of(dim)
            for region in sequence.regions:
                for deviation in region_probe_points(region):
                    new_weight = weight + deviation
                    if not 0.0 < new_weight <= 1.0:
                        continue
                    probe = (
                        query
                        if deviation == 0.0
                        else query.with_weight(dim, new_weight)
                    )
                    oracle = brute_force_topk(mutated, probe, computation.k)
                    assert oracle.ids == list(region.result_ids), (
                        f"valid verdict but top-k moved: dim {dim}, "
                        f"deviation {deviation}"
                    )
    else:
        # Evicted ⇒ a recomputation against the mutated index agrees
        # with the oracle (and is free to differ from the cached entry).
        if any(dataset.column_nnz(int(d)) > 0 for d in query.dims):
            recomputed = engine.compute(query, k, phi=phi)
            assert recomputed.result.ids == brute_force_topk(
                mutated, query, computation.k
            ).ids
            assert recomputed.epoch == index.epoch


@given(case=semantics_case())
@settings(**SETTINGS)
def test_subspace_inert_mutations_always_survive(case):
    """Mutations with no coordinate on the query's subspace keep entries."""
    seed, n, m, density, op_codes, k, phi = case
    dataset = build_dataset(seed, n, m, density)
    index = InvertedIndex(dataset)
    rng = np.random.default_rng(seed + 11)
    eligible = [d for d in range(m) if dataset.column_nnz(d) > 0]
    if len(eligible) < 2 or len(eligible) == m:
        return  # need a dimension outside the query subspace
    dims = sorted(rng.choice(eligible, size=2, replace=False).tolist())
    outside = [d for d in range(m) if d not in dims]
    query = Query(dims, rng.uniform(0.2, 0.9, size=2))
    computation = ImmutableRegionEngine(index, method="cpt").compute(
        query, k, phi=phi
    )
    # Touch only dimensions outside the subspace.
    from repro import Mutation, MutationBatch

    tid = int(rng.integers(dataset.n_tuples))
    batch = MutationBatch(
        (
            Mutation.update(tid, int(rng.choice(outside)), 0.42),
            Mutation.insert(outside, rng.uniform(0.1, 1.0, len(outside))),
        )
    )
    deltas = index.apply(batch)
    assert computation_survives(computation, deltas, dataset)
