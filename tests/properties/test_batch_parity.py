"""Property-based tests: ``compute_many`` is identical to per-query ``compute``.

The cross-query batch layer (shared :class:`~repro.storage.plan.SubspacePlan`
per dims signature + fused multi-query kernels) promises the *exact*
output of the sequential engine:

* in ``topk_mode="ta"`` — everything, including access and evaluation
  counters (the TA pulls are replayed, just against shared plan state);
* in ``topk_mode="matmul"`` — identical results, regions, bounds, kinds,
  and provenance; the storage model is not simulated, which the
  computation declares via ``metrics.counters_simulated``.

These tests hold that promise over randomized datasets, mixed-signature
workloads, φ values, and all four methods.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    METHODS,
    TOPK_MODES,
    Dataset,
    ImmutableRegionEngine,
    InvertedIndex,
    Query,
)

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def dataset_and_workload(draw, max_n=70, max_m=6, max_k=6):
    """A random sparse dataset plus a workload mixing dims signatures."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(8, max_n))
    m = draw(st.integers(2, max_m))
    density = draw(st.floats(0.3, 1.0))
    rng = np.random.default_rng(seed)
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    data = Dataset.from_dense(dense)
    eligible = [d for d in range(m) if data.column_nnz(d) > 0]
    if len(eligible) < 2:
        dense[:, :2] = rng.random((n, 2))
        data = Dataset.from_dense(dense)
        eligible = [d for d in range(m) if data.column_nnz(d) > 0]
    n_signatures = draw(st.integers(1, 3))
    queries_per_signature = draw(st.integers(1, 4))
    queries = []
    for _ in range(n_signatures):
        qlen = int(rng.integers(2, min(4, len(eligible)) + 1))
        dims = sorted(rng.choice(eligible, size=qlen, replace=False).tolist())
        for _ in range(queries_per_signature):
            queries.append(Query(dims, rng.uniform(0.2, 0.9, size=qlen)))
    rng.shuffle(queries)  # interleave signatures like real traffic
    k = draw(st.integers(1, max_k))
    return data, queries, k


def bound_repr(bound):
    return (bound.delta, bound.kind, bound.rising_id, bound.falling_id)


def sequence_repr(sequence):
    return (
        tuple(
            (bound_repr(r.lower), bound_repr(r.upper), r.result_ids)
            for r in sequence.regions
        ),
        sequence.current_index,
    )


def region_repr(computation):
    """Result, scores, and full region sequences — identical in BOTH modes."""
    return {
        "result": computation.result.ids,
        "scores": [float(s) for s in computation.result.scores],
        "sequences": {
            dim: sequence_repr(seq) for dim, seq in computation.sequences.items()
        },
        "reorder_counts": computation.metrics.evals.result_comparisons,
    }


def counter_repr(computation):
    """The storage-model counters — additionally identical in ta mode."""
    metrics = computation.metrics
    evals = metrics.evals
    return {
        "ta_access": (
            metrics.ta_access.sorted_accesses,
            metrics.ta_access.random_accesses,
        ),
        "region_access": (
            metrics.region_access.sorted_accesses,
            metrics.region_access.random_accesses,
        ),
        "evals": (
            evals.evaluated_candidates,
            evals.result_comparisons,
            evals.termination_checks,
            evals.pruned_candidates,
            evals.phase3_tuples,
        ),
        "evaluated_per_dim": metrics.evaluated_per_dim,
        "candidates_total": metrics.candidates_total,
        "cl_union_size": metrics.cl_union_size,
        "io_seconds": metrics.io_seconds,
    }


@pytest.mark.parametrize("method", METHODS)
@given(case=dataset_and_workload(), phi=st.integers(0, 2))
@settings(**SETTINGS)
def test_compute_many_matches_compute(case, phi, method):
    """Regions/bounds/provenance agree in both modes; counters in ta mode."""
    data, queries, k = case
    index = InvertedIndex(data)
    engine = ImmutableRegionEngine(index, method=method)
    reference = [engine.compute(query, k, phi=phi) for query in queries]
    for mode in TOPK_MODES:
        batch = engine.compute_many(queries, k, phi=phi, topk_mode=mode)
        assert len(batch) == len(queries)
        for ref, got in zip(reference, batch):
            assert region_repr(ref) == region_repr(got), mode
            if mode == "ta":
                assert counter_repr(ref) == counter_repr(got)
                assert got.metrics.counters_simulated
            elif got.metrics.counters_simulated:
                # matmul fell back to the exact TA replay (phi>0, ties,
                # ...) — then the counters must be the real ones too.
                assert counter_repr(ref) == counter_repr(got)


@given(case=dataset_and_workload())
@settings(**SETTINGS)
def test_compute_many_composition_only_mode(case):
    """The §7.4 count_reorderings=False scenario holds parity in both modes."""
    data, queries, k = case
    engine = ImmutableRegionEngine(
        InvertedIndex(data), method="cpt", count_reorderings=False
    )
    reference = [engine.compute(query, k) for query in queries]
    for mode in TOPK_MODES:
        batch = engine.compute_many(queries, k, topk_mode=mode)
        for ref, got in zip(reference, batch):
            assert region_repr(ref) == region_repr(got)


@given(case=dataset_and_workload())
@settings(**SETTINGS)
def test_duplicate_queries_share_one_computation(case):
    """Duplicates within a batch map to the very same computation object."""
    data, queries, k = case
    engine = ImmutableRegionEngine(InvertedIndex(data), method="cpt")
    doubled = list(queries) + list(queries)
    for mode in TOPK_MODES:
        batch = engine.compute_many(doubled, k, topk_mode=mode)
        for first, second in zip(batch[: len(queries)], batch[len(queries) :]):
            assert first is second


def test_matmul_mode_marks_counters_not_simulated():
    """The fused path declares its zeroed counters as not-simulated."""
    rng = np.random.default_rng(3)
    data = Dataset.from_dense(rng.random((40, 5)))
    engine = ImmutableRegionEngine(InvertedIndex(data), method="cpt")
    query = Query([0, 2], [0.6, 0.4])
    fused = engine.compute_many([query], 5, topk_mode="matmul")[0]
    assert not fused.metrics.counters_simulated
    assert fused.metrics.ta_access.sorted_accesses == 0
    assert fused.metrics.io_seconds == 0.0
    replay = engine.compute_many([query], 5, topk_mode="ta")[0]
    assert replay.metrics.counters_simulated
    assert replay.metrics.ta_access.sorted_accesses > 0
    # ... while the regions are the very same.
    assert region_repr(fused) == region_repr(replay)


def test_unknown_topk_mode_rejected():
    rng = np.random.default_rng(4)
    data = Dataset.from_dense(rng.random((10, 3)))
    engine = ImmutableRegionEngine(InvertedIndex(data))
    with pytest.raises(Exception):
        engine.compute_many([Query([0], [0.5])], 3, topk_mode="gemm")


class TestDomainEdgeDegeneracies:
    """Structural domain-edge coincidences must not split the two modes.

    When ``d_k`` is supported on only one query dimension, its score line
    vanishes exactly at weight 0 (the domain lower limit).  Two tuple
    shapes then cross it *exactly at* the domain edge in real arithmetic,
    where division rounding can land on either side:

    * another single-supported tuple on the same dimension (both lines
      vanish together) — the fused path must fall back to the TA replay,
      because the sequential bound depends on TA's encounter set;
    * a zero-score tuple (flat zero line) — outside the candidate
      universe entirely; the fused reduction must treat it as inert.

    Regression for a pre-existing sequential-vs-matmul divergence found
    by the derandomized hypothesis ``ci`` profile.
    """

    def test_single_supported_pair_falls_back_to_replay(self):
        # d_k and the would-be candidate live only on dim 1; the true
        # crossing is exactly -q_1 and -fl(w·a − w·b)/(b − a) rounds
        # inside the domain for this weight.
        data = Dataset.from_dense(
            [[0.9, 0.0], [0.0, 0.8], [0.0, 0.6]]
        )
        query = Query([0, 1], [0.51, 0.31])
        engine = ImmutableRegionEngine(InvertedIndex(data), method="scan")
        sequential = engine.compute(query, 2)
        fused = engine.compute_many([query], 2, topk_mode="matmul")[0]
        assert region_repr(sequential) == region_repr(fused)
        region = fused.sequences[1].regions[0]
        assert region.lower.kind == "domain"

    def test_zero_score_rows_are_inert(self):
        # Tuple 1 is an all-zero row; d_k is single-supported on dim 0,
        # and -fl(w·c)/c rounds one ulp inside -q_0 for these values.
        rng = np.random.default_rng(1231)
        n, m = int(rng.integers(5, 12)), 2
        density = rng.uniform(0.15, 0.5)
        dense = rng.random((n, m)) * (rng.random((n, m)) < density)
        data = Dataset.from_dense(dense)
        query = Query([0, 1], rng.uniform(0.2, 0.35, 2))
        engine = ImmutableRegionEngine(InvertedIndex(data), method="scan")
        sequential = engine.compute(query, 2)
        fused = engine.compute_many([query], 2, topk_mode="matmul")[0]
        assert region_repr(sequential) == region_repr(fused)
        assert fused.sequences[0].regions[0].lower.kind == "domain"
