"""Property-based tests: every method equals the brute-force oracle.

Datasets are drawn with continuous values (general position with
probability 1), so exact equality of bounds and per-region results is the
expected behaviour — see DESIGN.md on ties and coincident crossings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    METHODS,
    Dataset,
    Query,
    brute_force_sequences,
    compute_immutable_regions,
)

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def dataset_query_k(draw, max_n=60, max_m=6, max_k=8):
    """A random sparse dataset with a valid query over it."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(5, max_n))
    m = draw(st.integers(2, max_m))
    density = draw(st.floats(0.3, 1.0))
    rng = np.random.default_rng(seed)
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    data = Dataset.from_dense(dense)
    eligible = [d for d in range(m) if data.column_nnz(d) > 0]
    if len(eligible) < 2:
        dense[:, :2] = rng.random((n, 2))
        data = Dataset.from_dense(dense)
        eligible = [d for d in range(m) if data.column_nnz(d) > 0]
    qlen = draw(st.integers(2, min(4, len(eligible))))
    dims = sorted(rng.choice(eligible, size=qlen, replace=False).tolist())
    weights = rng.uniform(0.2, 0.9, size=qlen)
    k = draw(st.integers(1, max_k))
    return data, Query(dims, weights), k


def normalised(sequence, as_set):
    out = []
    for region in sequence:
        ids = frozenset(region.result_ids) if as_set else tuple(region.result_ids)
        out.append((round(region.lower.delta, 9), round(region.upper.delta, 9), ids))
    return out


def assert_matches_oracle(data, query, k, phi, count_reorderings, methods=METHODS):
    oracle = brute_force_sequences(
        data, query, k, phi=phi, count_reorderings=count_reorderings
    )
    for method in methods:
        computation = compute_immutable_regions(
            data,
            query,
            k,
            method=method,
            phi=phi,
            count_reorderings=count_reorderings,
        )
        for dim in query.dims:
            dim = int(dim)
            got = normalised(computation.sequence(dim), as_set=not count_reorderings)
            expected = normalised(oracle[dim], as_set=not count_reorderings)
            assert got == expected, (
                f"method={method} dim={dim} phi={phi} cr={count_reorderings}\n"
                f"got      {got}\nexpected {expected}"
            )


class TestPhi0Agreement:
    @given(case=dataset_query_k())
    @settings(**SETTINGS)
    def test_all_methods_match_oracle(self, case):
        data, query, k = case
        assert_matches_oracle(data, query, k, phi=0, count_reorderings=True)

    @given(case=dataset_query_k())
    @settings(**SETTINGS)
    def test_composition_only_matches_oracle(self, case):
        data, query, k = case
        assert_matches_oracle(data, query, k, phi=0, count_reorderings=False)


class TestPhiPositiveAgreement:
    @given(case=dataset_query_k(max_n=40), phi=st.integers(1, 4))
    @settings(**SETTINGS)
    def test_one_off_methods_match_oracle(self, case, phi):
        data, query, k = case
        assert_matches_oracle(data, query, k, phi=phi, count_reorderings=True)

    @given(case=dataset_query_k(max_n=30), phi=st.integers(1, 3))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_composition_only_phi_matches_oracle(self, case, phi):
        data, query, k = case
        assert_matches_oracle(data, query, k, phi=phi, count_reorderings=False)


class TestIterativeAgreement:
    @given(case=dataset_query_k(max_n=30), phi=st.integers(1, 3))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_iterative_equals_one_off(self, case, phi):
        """Figure 15's premise: both regimes produce identical regions."""
        data, query, k = case
        for method in ("prune", "cpt"):
            one_off = compute_immutable_regions(
                data, query, k, method=method, phi=phi, iterative=False
            )
            iterative = compute_immutable_regions(
                data, query, k, method=method, phi=phi, iterative=True
            )
            for dim in query.dims:
                dim = int(dim)
                assert normalised(one_off.sequence(dim), False) == normalised(
                    iterative.sequence(dim), False
                )


class TestProbingInvariance:
    @given(case=dataset_query_k(max_n=40))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_probing_strategy_never_changes_regions(self, case):
        data, query, k = case
        rr = compute_immutable_regions(
            data, query, k, method="cpt", probing="round_robin"
        )
        mi = compute_immutable_regions(
            data, query, k, method="cpt", probing="max_impact"
        )
        for dim in query.dims:
            dim = int(dim)
            assert normalised(rr.sequence(dim), False) == normalised(
                mi.sequence(dim), False
            )
