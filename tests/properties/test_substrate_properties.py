"""Property-based tests for the data/storage/top-k substrates."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, InvertedIndex, Query, ThresholdAlgorithm, brute_force_topk
from repro.metrics import AccessCounters

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def sparse_matrix(draw, max_n=40, max_m=8):
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(1, max_m))
    density = draw(st.floats(0.0, 1.0))
    rng = np.random.default_rng(seed)
    return rng.random((n, m)) * (rng.random((n, m)) < density)


class TestDatasetInvariants:
    @given(dense=sparse_matrix())
    @settings(**SETTINGS)
    def test_dense_round_trip(self, dense):
        data = Dataset.from_dense(dense)
        assert np.array_equal(data.to_dense(), dense)

    @given(dense=sparse_matrix())
    @settings(**SETTINGS)
    def test_nnz_matches_dense(self, dense):
        data = Dataset.from_dense(dense)
        assert data.nnz == int(np.count_nonzero(dense))

    @given(dense=sparse_matrix())
    @settings(**SETTINGS)
    def test_value_agrees_with_dense(self, dense):
        data = Dataset.from_dense(dense)
        rng = np.random.default_rng(0)
        for _ in range(10):
            i = int(rng.integers(0, data.n_tuples))
            j = int(rng.integers(0, data.n_dims))
            assert data.value(i, j) == dense[i, j]

    @given(dense=sparse_matrix())
    @settings(**SETTINGS)
    def test_row_and_column_views_consistent(self, dense):
        data = Dataset.from_dense(dense)
        # Sum over rows == sum over columns == dense sum.
        row_sum = sum(float(vals.sum()) for _, vals in
                      (data.row(i) for i in range(data.n_tuples)))
        col_sum = sum(float(data.column(j)[1].sum()) for j in range(data.n_dims))
        assert abs(row_sum - col_sum) < 1e-9
        assert abs(row_sum - float(dense.sum())) < 1e-9

    @given(dense=sparse_matrix())
    @settings(**SETTINGS)
    def test_values_at_matches_dense_gather(self, dense):
        data = Dataset.from_dense(dense)
        dims = np.arange(data.n_dims)
        for i in range(min(5, data.n_tuples)):
            assert np.array_equal(data.values_at(i, dims), dense[i])


class TestInvertedListInvariants:
    @given(dense=sparse_matrix())
    @settings(**SETTINGS)
    def test_lists_sorted_and_complete(self, dense):
        data = Dataset.from_dense(dense)
        index = InvertedIndex(data)
        for j in range(data.n_dims):
            posting = index.list_for(j)
            assert np.all(np.diff(posting.values) <= 0)
            assert posting.size == data.column_nnz(j)
            for pos in range(posting.size):
                tid, value = posting.entry(pos)
                assert data.value(tid, j) == value

    @given(dense=sparse_matrix())
    @settings(**SETTINGS)
    def test_tie_order_ascending_ids(self, dense):
        data = Dataset.from_dense(dense)
        index = InvertedIndex(data)
        for j in range(data.n_dims):
            posting = index.list_for(j)
            for a, b in zip(range(posting.size), range(1, posting.size)):
                va, vb = posting.values[a], posting.values[b]
                if va == vb:
                    assert posting.ids[a] < posting.ids[b]


class TestTAInvariants:
    @given(dense=sparse_matrix(max_n=50), k=st.integers(1, 12),
           seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_ta_equals_oracle_for_any_query(self, dense, k, seed):
        data = Dataset.from_dense(dense)
        eligible = [d for d in range(data.n_dims) if data.column_nnz(d) > 0]
        if not eligible:
            return
        rng = np.random.default_rng(seed)
        qlen = int(rng.integers(1, min(4, len(eligible)) + 1))
        dims = sorted(rng.choice(eligible, size=qlen, replace=False).tolist())
        query = Query(dims, rng.uniform(0.1, 1.0, size=qlen))
        outcome = ThresholdAlgorithm(InvertedIndex(data), query, k).run()
        oracle = brute_force_topk(data, query, k)
        assert outcome.result.ids == oracle.ids

    @given(dense=sparse_matrix(max_n=50), seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_candidates_never_outscore_kth(self, dense, seed):
        data = Dataset.from_dense(dense)
        eligible = [d for d in range(data.n_dims) if data.column_nnz(d) > 0]
        if not eligible:
            return
        rng = np.random.default_rng(seed)
        dims = sorted(
            rng.choice(eligible, size=min(3, len(eligible)), replace=False).tolist()
        )
        query = Query(dims, rng.uniform(0.1, 1.0, size=len(dims)))
        counters = AccessCounters()
        outcome = ThresholdAlgorithm(
            InvertedIndex(data), query, 5, counters=counters
        ).run()
        if len(outcome.result) == 0:
            return
        kth = outcome.result.kth_score
        kth_id = outcome.result.kth_id
        for tid, score in outcome.candidates:
            assert (score, -tid) <= (kth, -kth_id) or score < kth
        # Every sorted access implies at most one random access per tuple.
        assert counters.random_accesses <= counters.sorted_accesses or (
            counters.sorted_accesses == 0
        )
