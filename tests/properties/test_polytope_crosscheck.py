"""Cross-validation against an independent geometric oracle (qhull path).

For 2-dimensional queries the validity region is a polygon in query space
(paper Figure 3).  The immutable-region bounds must coincide with the exit
points of the axis-parallel rays through q — computed here from raw
half-space constraints via :func:`axis_exit_distance`, a code path that
shares nothing with Lemma 1 / the sweep.  The qhull polytope itself is
also materialised and checked to contain every region's interior.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Query, brute_force_topk, compute_immutable_regions
from repro.geometry.halfspace import axis_exit_distance, validity_polytope_2d

from ..conftest import random_sparse_dataset


def validity_normals(data, query, k):
    """All half-space normals of the validity region (order + composition)."""
    result = brute_force_topk(data, query, k)
    rows = {tid: data.values_at(tid, query.dims) for tid in result.ids}
    normals = []
    for ahead, behind in zip(result.ids, result.ids[1:]):
        normals.append(rows[ahead] - rows[behind])
    kth_row = rows[result.kth_id]
    scores = data.scores(query.dims, query.weights)
    for tid in range(data.n_tuples):
        if tid in result or scores[tid] <= 0.0:
            continue
        normals.append(kth_row - data.values_at(tid, query.dims))
    return normals


@pytest.mark.parametrize("seed", range(12))
def test_bounds_match_halfspace_ray_exits(seed):
    rng = np.random.default_rng(seed)
    data = random_sparse_dataset(rng, 50, 2, density=0.9)
    if data.column_nnz(0) == 0 or data.column_nnz(1) == 0:
        pytest.skip("degenerate dataset")
    query = Query([0, 1], rng.uniform(0.25, 0.85, size=2))
    k = int(rng.integers(1, 6))

    computation = compute_immutable_regions(data, query, k, method="cpt")
    normals = validity_normals(data, query, k)
    weights = query.weights

    for axis, dim in enumerate((0, 1)):
        region = computation.region(dim)
        up = axis_exit_distance(weights, normals, dim=axis, direction=1)
        down = axis_exit_distance(weights, normals, dim=axis, direction=-1)
        assert region.upper.delta == pytest.approx(up, abs=1e-9)
        assert region.lower.delta == pytest.approx(-down, abs=1e-9)


@pytest.mark.parametrize("seed", range(6))
def test_polytope_contains_region_interiors(seed):
    rng = np.random.default_rng(100 + seed)
    data = random_sparse_dataset(rng, 40, 2, density=0.9)
    if data.column_nnz(0) == 0 or data.column_nnz(1) == 0:
        pytest.skip("degenerate dataset")
    query = Query([0, 1], rng.uniform(0.3, 0.8, size=2))
    k = 3

    computation = compute_immutable_regions(data, query, k, method="cpt")
    normals = validity_normals(data, query, k)
    try:
        vertices = validity_polytope_2d(query.weights, normals)
    except Exception:
        pytest.skip("degenerate polytope (query on boundary)")
    polygon = np.asarray(vertices)

    def inside(point):
        """Point-in-convex-polygon via sign of cross products (CCW hull)."""
        n = len(polygon)
        for i in range(n):
            a, b = polygon[i], polygon[(i + 1) % n]
            cross = (b[0] - a[0]) * (point[1] - a[1]) - (b[1] - a[1]) * (
                point[0] - a[0]
            )
            if cross < -1e-9:
                return False
        return True

    for axis, dim in enumerate((0, 1)):
        region = computation.region(dim)
        for fraction in (0.25, 0.5, 0.75):
            delta = region.lower.delta + fraction * region.width
            if not region.contains(delta):
                continue
            point = query.weights.copy()
            point[axis] += delta
            assert inside(point), (dim, delta)
