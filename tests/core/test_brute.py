"""Tests for the brute-force oracle itself (internal consistency)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Dataset,
    Query,
    brute_force_bounds_phi0,
    brute_force_sequence,
    brute_force_sequences,
    brute_force_topk,
)


@pytest.fixture()
def data_and_query():
    rng = np.random.default_rng(9)
    dense = rng.random((50, 4)) * (rng.random((50, 4)) < 0.8)
    data = Dataset.from_dense(dense)
    return data, Query([0, 2], [0.5, 0.7])


class TestBruteTopK:
    def test_matches_numpy_argsort(self, data_and_query):
        data, query = data_and_query
        result = brute_force_topk(data, query, 5)
        scores = data.scores(query.dims, query.weights)
        expected = list(np.lexsort((np.arange(50), -scores))[:5])
        assert result.ids == [int(i) for i in expected]

    def test_k_exceeds_matching_tuples(self, data_and_query):
        """Only positive-score (matching) tuples are rankable — TA semantics."""
        data, query = data_and_query
        scores = data.scores(query.dims, query.weights)
        matching = int(np.count_nonzero(scores > 0.0))
        assert len(brute_force_topk(data, query, 500)) == matching

    def test_zero_score_tuples_excluded(self):
        data = Dataset.from_dense([[0.5, 0.0], [0.0, 0.9], [0.0, 0.0]])
        result = brute_force_topk(data, Query([0], [0.5]), 3)
        assert result.ids == [0]


class TestBruteBoundsPhi0:
    def test_consistent_with_sweep_sequence(self, data_and_query):
        data, query = data_and_query
        for dim in (0, 2):
            lo, hi = brute_force_bounds_phi0(data, query, 5, dim)
            seq = brute_force_sequence(data, query, 5, dim, phi=0)
            assert seq.current.lower.delta == pytest.approx(lo)
            assert seq.current.upper.delta == pytest.approx(hi)

    def test_moving_inside_preserves_topk(self, data_and_query):
        """At any deviation strictly inside the bounds, the top-k is stable."""
        data, query = data_and_query
        base = brute_force_topk(data, query, 5)
        for dim in (0, 2):
            lo, hi = brute_force_bounds_phi0(data, query, 5, dim)
            for fraction in (0.25, 0.75):
                delta = lo + fraction * (hi - lo)
                if not lo < delta < hi:
                    continue
                moved = query.with_weight(dim, query.weight_of(dim) + delta)
                assert brute_force_topk(data, moved, 5).ids == base.ids

    def test_moving_past_bound_perturbs_topk(self, data_and_query):
        data, query = data_and_query
        base = brute_force_topk(data, query, 5)
        eps = 1e-7
        for dim in (0, 2):
            lo, hi = brute_force_bounds_phi0(data, query, 5, dim)
            weight = query.weight_of(dim)
            if hi < 1.0 - weight - eps:  # crossing bound, not domain limit
                moved = query.with_weight(dim, weight + hi + eps)
                assert brute_force_topk(data, moved, 5).ids != base.ids
            if lo > -weight + eps:
                moved = query.with_weight(dim, weight + lo - eps)
                assert brute_force_topk(data, moved, 5).ids != base.ids


class TestBruteSequences:
    def test_regions_report_correct_results(self, data_and_query):
        """Recomputing the top-k at each region's midpoint matches its label."""
        data, query = data_and_query
        sequences = brute_force_sequences(data, query, 5, phi=2)
        for dim, seq in sequences.items():
            weight = query.weight_of(dim)
            for region in seq:
                mid = (region.lower.delta + region.upper.delta) / 2.0
                if not region.contains(mid):
                    continue
                new_weight = weight + mid
                if not 0.0 < new_weight <= 1.0:
                    continue
                moved = query.with_weight(dim, new_weight)
                assert brute_force_topk(data, moved, 5).ids == list(region.result_ids)

    def test_sequences_keyed_by_query_dims(self, data_and_query):
        data, query = data_and_query
        assert set(brute_force_sequences(data, query, 3)) == {0, 2}
