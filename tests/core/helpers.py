"""Helpers for core-layer tests: build a live RunContext like the engine does."""

from __future__ import annotations

from repro import Dataset, InvertedIndex, Query
from repro.core.context import RunContext
from repro.metrics import AccessCounters, EvaluationCounters, PhaseTimer
from repro.storage import TupleStore
from repro.topk import ThresholdAlgorithm


def make_context(
    dataset: Dataset,
    query: Query,
    k: int,
    phi: int = 0,
    count_reorderings: bool = True,
    probing: str = "round_robin",
) -> RunContext:
    """Run TA and assemble a RunContext exactly as the engine would."""
    index = InvertedIndex(dataset)
    access = AccessCounters()
    store = TupleStore(dataset, access)
    ta = ThresholdAlgorithm(index, query, k, counters=access, store=store, probing=probing)
    outcome = ta.run()
    return RunContext(
        index=index,
        query=query,
        k=k,
        phi=phi,
        count_reorderings=count_reorderings,
        ta=ta,
        outcome=outcome,
        store=store,
        access=access,
        evals=EvaluationCounters(),
        timer=PhaseTimer(),
    )
