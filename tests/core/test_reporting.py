"""Tests for computation serialisation and text rendering."""

from __future__ import annotations

import json

import pytest

from repro import compute_immutable_regions
from repro.core.reporting import (
    bound_to_dict,
    computation_to_dict,
    region_to_dict,
    render_report,
    render_slider,
    sequence_to_dict,
)
from repro.core.regions import Bound, BoundKind


@pytest.fixture()
def computation(example_dataset, example_query):
    return compute_immutable_regions(example_dataset, example_query, k=2, phi=1)


class TestDictConversion:
    def test_bound_dict_domain(self):
        payload = bound_to_dict(Bound(0.2, BoundKind.DOMAIN))
        assert payload == {"delta": 0.2, "kind": "domain", "closed": True}

    def test_bound_dict_crossing(self):
        payload = bound_to_dict(
            Bound(0.1, BoundKind.REORDER, rising_id=3, falling_id=4)
        )
        assert payload["rising_id"] == 3
        assert payload["falling_id"] == 4
        assert not payload["closed"]

    def test_region_dict_fields(self, computation):
        payload = region_to_dict(computation.region(0))
        assert payload["dim"] == 0
        assert payload["weight"] == pytest.approx(0.8)
        assert payload["result_ids"] == [1, 0]
        assert payload["width"] == pytest.approx(0.1 + 16 / 35)

    def test_sequence_dict(self, computation):
        payload = sequence_to_dict(computation.sequence(0))
        assert payload["current_index"] == 1
        assert len(payload["regions"]) == 3

    def test_computation_dict_json_safe(self, computation):
        payload = computation_to_dict(computation)
        text = json.dumps(payload)  # must not raise
        restored = json.loads(text)
        assert restored["result_ids"] == [1, 0]
        assert restored["k"] == 2
        assert restored["sequences"]["0"]["regions"][1]["result_ids"] == [1, 0]
        assert restored["metrics"]["io_seconds"] >= 0.0

    def test_metrics_match_object(self, computation):
        payload = computation_to_dict(computation)
        assert (
            payload["metrics"]["evaluated_candidates"]
            == computation.metrics.evals.evaluated_candidates
        )


class TestRendering:
    def test_slider_marks_present(self, computation):
        slider = render_slider(computation.region(0))
        assert "[" in slider and "]" in slider and "|" in slider
        assert slider.startswith("0 ") and slider.endswith(" 1")

    def test_slider_width_validated(self, computation):
        with pytest.raises(Exception):
            render_slider(computation.region(0), width=3)

    def test_report_lists_all_dims(self, computation):
        report = render_report(computation)
        assert "dim 0" in report and "dim 1" in report
        assert "top-2: [1, 0]" in report

    def test_report_marks_current_region(self, computation):
        report = render_report(computation)
        assert " * " in report  # the current-region marker

    def test_report_composition_only_label(self, example_dataset, example_query):
        computation = compute_immutable_regions(
            example_dataset, example_query, k=2, count_reorderings=False
        )
        assert "composition-only" in render_report(computation)
