"""Tests for the footnote-1 concurrent-deviation guarantee."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Query, brute_force_topk, compute_immutable_regions
from repro.core.concurrent import (
    concurrent_deviation_safe,
    cross_polytope_margin,
    sensitivity_profile,
)
from repro.core.regions import Bound, BoundKind, ImmutableRegion
from repro.errors import QueryError

from ..conftest import random_query, random_sparse_dataset


def make_region(dim, weight, lo, hi, closed=False):
    if closed:
        lower, upper = Bound(lo, BoundKind.DOMAIN), Bound(hi, BoundKind.DOMAIN)
    else:
        lower = Bound(lo, BoundKind.COMPOSITION, rising_id=1, falling_id=2)
        upper = Bound(hi, BoundKind.REORDER, rising_id=1, falling_id=2)
    return ImmutableRegion(dim=dim, weight=weight, lower=lower, upper=upper,
                           result_ids=(1, 2))


class TestMargin:
    def test_zero_deviation_has_zero_margin(self):
        regions = {0: make_region(0, 0.5, -0.2, 0.3)}
        assert cross_polytope_margin(regions, {0: 0.0}) == 0.0

    def test_margin_is_weighted_l1(self):
        regions = {
            0: make_region(0, 0.5, -0.2, 0.4),
            1: make_region(1, 0.5, -0.1, 0.2),
        }
        margin = cross_polytope_margin(regions, {0: 0.2, 1: -0.05})
        assert margin == pytest.approx(0.2 / 0.4 + 0.05 / 0.1)

    def test_full_axis_reach_is_margin_one(self):
        regions = {0: make_region(0, 0.5, -0.2, 0.4)}
        assert cross_polytope_margin(regions, {0: 0.4}) == pytest.approx(1.0)

    def test_zero_width_side_is_infinite(self):
        regions = {0: make_region(0, 0.5, -0.2, 0.0)}
        assert cross_polytope_margin(regions, {0: 0.1}) == float("inf")

    def test_missing_region_rejected(self):
        with pytest.raises(QueryError):
            cross_polytope_margin({}, {0: 0.1})


class TestSafety:
    def test_interior_point_safe(self):
        regions = {
            0: make_region(0, 0.5, -0.2, 0.4),
            1: make_region(1, 0.5, -0.1, 0.2),
        }
        assert concurrent_deviation_safe(regions, {0: 0.1, 1: 0.05})

    def test_beyond_hull_not_certified(self):
        regions = {
            0: make_region(0, 0.5, -0.2, 0.4),
            1: make_region(1, 0.5, -0.1, 0.2),
        }
        assert not concurrent_deviation_safe(regions, {0: 0.3, 1: 0.15})

    def test_open_boundary_not_certified(self):
        regions = {0: make_region(0, 0.5, -0.2, 0.4, closed=False)}
        assert not concurrent_deviation_safe(regions, {0: 0.4})

    def test_closed_boundary_certified(self):
        regions = {0: make_region(0, 0.5, -0.5, 0.5, closed=True)}
        assert concurrent_deviation_safe(regions, {0: 0.5})

    @pytest.mark.parametrize("seed", range(15))
    def test_certified_deviations_really_preserve_topk(self, seed):
        """The guarantee holds against from-scratch recomputation."""
        rng = np.random.default_rng(seed)
        data = random_sparse_dataset(rng, 60, 5, density=0.7)
        query = random_query(rng, data, qlen=3)
        k = 4
        computation = compute_immutable_regions(data, query, k, method="cpt")
        base = computation.result.ids
        regions = {int(d): computation.region(int(d)) for d in query.dims}

        for _ in range(20):
            # Random direction, scaled strictly inside the cross-polytope.
            raw = {int(d): float(rng.uniform(-1, 1)) for d in query.dims}
            margin = cross_polytope_margin(regions, raw)
            if margin in (0.0, float("inf")):
                continue
            scale = float(rng.uniform(0.05, 0.95)) / margin
            deviations = {d: v * scale for d, v in raw.items()}
            assert concurrent_deviation_safe(regions, deviations)
            new_weights = {
                int(d): query.weight_of(int(d)) + deviations[int(d)]
                for d in query.dims
            }
            if any(not 0.0 < w <= 1.0 for w in new_weights.values()):
                continue
            moved = Query(list(new_weights), list(new_weights.values()))
            assert brute_force_topk(data, moved, k).ids == base


class TestSensitivityProfile:
    def test_inverse_width(self):
        regions = {
            0: make_region(0, 0.5, -0.2, 0.3),  # width 0.5
            1: make_region(1, 0.5, -0.05, 0.05),  # width 0.1
        }
        profile = sensitivity_profile(regions)
        assert profile[0] == pytest.approx(2.0)
        assert profile[1] == pytest.approx(10.0)
        assert profile[1] > profile[0]  # narrower region = more sensitive

    def test_zero_width_is_infinite(self):
        regions = {0: make_region(0, 0.5, 0.0, 0.0, closed=True)}
        assert sensitivity_profile(regions)[0] == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            sensitivity_profile({})
