"""Unit tests for the iterative φ>0 machinery's internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Query, brute_force_sequence, compute_immutable_regions
from repro.core.iterative import compute_iterative_sequence, iterative_side

from .helpers import make_context


class TestDroppedMemberReentry:
    def test_dropped_tuple_can_reenter_later(self):
        """A result tuple displaced by a steep candidate can re-enter when a
        reorder later flattens the k-th line — the pool must retain it.

        Construction (k=2, single query dim of interest):
          - a: high score, flat     (stays on top, then overtaken late)
          - b: mid score, mid slope (k-th initially; dropped early by c)
          - c: low score, steep     (enters early, climbs to rank 1)
        After c passes a inside the top-2, the k-th line is a (flat); b
        (mid slope) catches a again — b re-enters the result.
        """
        # dim0 drives the sweep; dim1 fixes the intercepts.
        data = Dataset.from_dense(
            [
                [0.05, 0.90],  # a: score .475, slope .05
                [0.30, 0.60],  # b: score .450, slope .30
                [0.90, 0.10],  # c: score .500*0.9... compute below
            ]
        )
        query = Query([0, 1], [0.5, 0.5])
        # scores: a=.475, b=.45, c=.5  -> R(q) = [c, a] at k=2?  Recompute:
        # c = .45+.05 = .5; so initial top-2 = [c(.5), a(.475)], b candidate.
        k = 2
        oracle = brute_force_sequence(data, query, k, 0, phi=4)
        computation = compute_immutable_regions(
            data, query, k, method="scan", phi=4, iterative=True
        )
        got = [(round(r.lower.delta, 9), round(r.upper.delta, 9), r.result_ids)
               for r in computation.sequence(0)]
        expected = [(round(r.lower.delta, 9), round(r.upper.delta, 9), r.result_ids)
                    for r in oracle]
        assert got == expected
        # The scenario is only meaningful if some tuple leaves and returns.
        appearances = {}
        for index, region in enumerate(computation.sequence(0)):
            for tid in region.result_ids:
                appearances.setdefault(tid, []).append(index)
        gaps = [
            ids for ids in appearances.values()
            if len(ids) >= 2 and ids[-1] - ids[0] + 1 > len(ids)
        ]
        assert gaps, "construction should force a leave-and-reenter pattern"


class TestIterativeCosts:
    @pytest.fixture(scope="class")
    def crowded(self):
        rng = np.random.default_rng(31)
        dense = 0.4 + 0.6 * rng.random((150, 4))
        return Dataset.from_dense(dense), Query([0, 1, 2], [0.5, 0.6, 0.4])

    def test_each_iteration_recharges_evaluations(self, crowded):
        """φ=3 iterative Scan must evaluate ≈ (regions × |C|), not |C|."""
        data, query = crowded
        one_region = compute_immutable_regions(
            data, query, 5, method="scan", phi=0
        )
        multi = compute_immutable_regions(
            data, query, 5, method="scan", phi=3, iterative=True
        )
        assert (
            multi.metrics.evals.evaluated_candidates
            > 1.5 * one_region.metrics.evals.evaluated_candidates
        )

    def test_iterative_thresholding_cheaper_than_iterative_scan(self, crowded):
        data, query = crowded
        scan = compute_immutable_regions(
            data, query, 5, method="scan", phi=3, iterative=True
        )
        cpt = compute_immutable_regions(
            data, query, 5, method="cpt", phi=3, iterative=True
        )
        assert (
            cpt.metrics.evals.evaluated_candidates
            < scan.metrics.evals.evaluated_candidates
        )


class TestIterativeSideDirect:
    def test_empty_domain_side(self):
        data = Dataset.from_dense([[1.0, 0.4], [0.8, 0.3]])
        query = Query([0, 1], [1.0, 0.5])
        ctx = make_context(data, query, 1)
        ctx.phi = 2
        outcome = iterative_side(ctx, ctx.view(0), mirrored=False, policy="all")
        assert outcome.domain == 0.0 and outcome.events == []

    def test_sequence_matches_one_off_on_random_data(self):
        rng = np.random.default_rng(41)
        for trial in range(8):
            dense = rng.random((40, 4)) * (rng.random((40, 4)) < 0.8)
            data = Dataset.from_dense(dense)
            eligible = [d for d in range(4) if data.column_nnz(d) > 0]
            if len(eligible) < 2:
                continue
            query = Query(eligible[:2], [0.55, 0.65])
            for policy in ("all", "prune", "thres", "cpt"):
                ctx_a = make_context(data, query, 4)
                ctx_a.phi = 2
                iterative = compute_iterative_sequence(ctx_a, eligible[0], policy)
                oracle = brute_force_sequence(data, query, 4, eligible[0], phi=2)
                got = [(round(r.lower.delta, 9), round(r.upper.delta, 9))
                       for r in iterative]
                expected = [(round(r.lower.delta, 9), round(r.upper.delta, 9))
                            for r in oracle]
                assert got == expected, (trial, policy)
