"""Unit tests for Bound / ImmutableRegion / RegionSequence datatypes."""

from __future__ import annotations

import pytest

from repro.core.regions import Bound, BoundKind, ImmutableRegion, RegionSequence
from repro.errors import AlgorithmError


def region(lo, hi, dim=0, weight=0.5, result=(1, 2), lo_kind=None, hi_kind=None):
    lower = (
        Bound(lo, BoundKind.DOMAIN)
        if lo_kind is None
        else Bound(lo, lo_kind, rising_id=7, falling_id=8)
    )
    upper = (
        Bound(hi, BoundKind.DOMAIN)
        if hi_kind is None
        else Bound(hi, hi_kind, rising_id=7, falling_id=8)
    )
    return ImmutableRegion(dim=dim, weight=weight, lower=lower, upper=upper, result_ids=result)


class TestBound:
    def test_domain_bound_closed(self):
        assert Bound(0.5, BoundKind.DOMAIN).closed

    def test_crossing_bound_open(self):
        bound = Bound(0.1, BoundKind.REORDER, rising_id=1, falling_id=2)
        assert not bound.closed

    def test_invalid_kind_rejected(self):
        with pytest.raises(AlgorithmError):
            Bound(0.1, "weird")

    def test_domain_with_provenance_rejected(self):
        with pytest.raises(AlgorithmError):
            Bound(0.1, BoundKind.DOMAIN, rising_id=1, falling_id=2)

    def test_crossing_without_provenance_rejected(self):
        with pytest.raises(AlgorithmError):
            Bound(0.1, BoundKind.COMPOSITION)

    def test_repr(self):
        assert "reorder" in repr(Bound(0.1, BoundKind.REORDER, rising_id=1, falling_id=2))
        assert "domain" in repr(Bound(0.1, BoundKind.DOMAIN))


class TestImmutableRegion:
    def test_width(self):
        assert region(-0.2, 0.3).width == pytest.approx(0.5)

    def test_weight_interval(self):
        assert region(-0.2, 0.3, weight=0.5).weight_interval == pytest.approx((0.3, 0.8))

    def test_contains_interior(self):
        assert region(-0.2, 0.3).contains(0.0)

    def test_open_crossing_bounds_excluded(self):
        r = region(-0.2, 0.3, lo_kind=BoundKind.REORDER, hi_kind=BoundKind.COMPOSITION)
        assert not r.contains(-0.2)
        assert not r.contains(0.3)
        assert r.contains(0.29999)

    def test_closed_domain_bounds_included(self):
        r = region(-0.5, 0.5)
        assert r.contains(-0.5) and r.contains(0.5)

    def test_contains_weight(self):
        r = region(-0.2, 0.3, weight=0.5)
        assert r.contains_weight(0.5)
        assert not r.contains_weight(0.9)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(AlgorithmError):
            region(0.3, -0.2)

    def test_zero_width_allowed(self):
        assert region(0.1, 0.1).width == 0.0

    def test_bad_weight_rejected(self):
        with pytest.raises(Exception):
            region(-0.1, 0.1, weight=0.0)


class TestRegionSequence:
    def make_sequence(self):
        left = region(-0.5, -0.1, result=(2, 3), hi_kind=BoundKind.COMPOSITION)
        mid = region(-0.1, 0.2, result=(1, 2), lo_kind=BoundKind.COMPOSITION,
                     hi_kind=BoundKind.REORDER)
        right = region(0.2, 0.5, result=(2, 1), lo_kind=BoundKind.REORDER)
        return RegionSequence(dim=0, weight=0.5, regions=(left, mid, right), current_index=1)

    def test_current(self):
        seq = self.make_sequence()
        assert seq.current.result_ids == (1, 2)

    def test_span(self):
        assert self.make_sequence().span == pytest.approx((-0.5, 0.5))

    def test_region_for(self):
        seq = self.make_sequence()
        assert seq.region_for(-0.3).result_ids == (2, 3)
        assert seq.region_for(0.0).result_ids == (1, 2)
        assert seq.region_for(0.4).result_ids == (2, 1)

    def test_region_for_at_crossing_resolves_right(self):
        seq = self.make_sequence()
        assert seq.region_for(0.2).result_ids == (2, 1)

    def test_region_for_outside_rejected(self):
        with pytest.raises(AlgorithmError):
            self.make_sequence().region_for(0.9)

    def test_non_contiguous_rejected(self):
        left = region(-0.5, -0.2, result=(2, 3))
        mid = region(-0.1, 0.2, result=(1, 2))
        with pytest.raises(AlgorithmError):
            RegionSequence(dim=0, weight=0.5, regions=(left, mid), current_index=1)

    def test_current_must_contain_zero(self):
        r = region(0.1, 0.3)
        with pytest.raises(AlgorithmError):
            RegionSequence(dim=0, weight=0.5, regions=(r,), current_index=0)

    def test_iteration_and_len(self):
        seq = self.make_sequence()
        assert len(seq) == 3
        assert [r.result_ids for r in seq] == [(2, 3), (1, 2), (2, 1)]

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            RegionSequence(dim=0, weight=0.5, regions=(), current_index=0)


class TestLocateAndIntervalTable:
    """The precomputed-breakpoint fast paths added for the region index."""

    def make_sequence(self):
        return TestRegionSequence().make_sequence()

    def test_locate_matches_region_for(self):
        seq = self.make_sequence()
        for delta in (-0.5, -0.3, -0.1, 0.0, 0.15, 0.2, 0.4, 0.5):
            assert seq.regions[seq.locate(delta)] is seq.region_for(delta)

    def test_locate_at_crossing_resolves_right(self):
        seq = self.make_sequence()
        assert seq.locate(-0.1) == 1
        assert seq.locate(0.2) == 2

    def test_locate_at_span_ends(self):
        seq = self.make_sequence()
        assert seq.locate(-0.5) == 0
        assert seq.locate(0.5) == 2

    def test_locate_outside_rejected(self):
        seq = self.make_sequence()
        with pytest.raises(AlgorithmError):
            seq.locate(0.51)
        with pytest.raises(AlgorithmError):
            seq.locate(-0.6)

    def test_interval_table_aligns_with_regions(self):
        seq = self.make_sequence()
        lowers, uppers, lower_closed, upper_closed = seq.interval_table()
        assert lowers.tolist() == [r.lower.delta for r in seq.regions]
        assert uppers.tolist() == [r.upper.delta for r in seq.regions]
        assert lower_closed.tolist() == [r.lower.closed for r in seq.regions]
        assert upper_closed.tolist() == [r.upper.closed for r in seq.regions]

    def test_single_region_sequence(self):
        r = region(-0.5, 0.5)
        seq = RegionSequence(dim=0, weight=0.5, regions=(r,))
        assert seq.locate(0.0) == 0
        assert seq.locate(0.5) == 0
        lowers, uppers, lo_closed, hi_closed = seq.interval_table()
        assert lowers.tolist() == [-0.5] and uppers.tolist() == [0.5]
        assert lo_closed.tolist() == [True] and hi_closed.tolist() == [True]

    def test_pickle_round_trip_keeps_breakpoints(self):
        import pickle

        seq = self.make_sequence()
        clone = pickle.loads(pickle.dumps(seq))
        assert clone.locate(0.15) == seq.locate(0.15)
        assert [r.result_ids for r in clone] == [r.result_ids for r in seq]
