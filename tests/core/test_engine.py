"""Engine API and metrics-accounting tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Dataset,
    DiskModel,
    ImmutableRegionEngine,
    InvertedIndex,
    Query,
    compute_immutable_regions,
)
from repro.core.engine import derive_neighbour_result
from repro.core.regions import Bound, BoundKind
from repro.errors import AlgorithmError, QueryError


@pytest.fixture()
def small_index():
    rng = np.random.default_rng(1)
    dense = rng.random((80, 5)) * (rng.random((80, 5)) < 0.6)
    return InvertedIndex(Dataset.from_dense(dense))


class TestEngineValidation:
    def test_unknown_method_rejected(self, small_index):
        with pytest.raises(QueryError):
            ImmutableRegionEngine(small_index, method="magic")

    def test_bad_k_rejected(self, small_index):
        engine = ImmutableRegionEngine(small_index)
        with pytest.raises(Exception):
            engine.compute(Query([0], [0.5]), k=0)

    def test_bad_phi_rejected(self, small_index):
        engine = ImmutableRegionEngine(small_index)
        with pytest.raises(Exception):
            engine.compute(Query([0], [0.5]), k=1, phi=-1)

    def test_empty_result_rejected(self):
        data = Dataset.from_dense([[0.0, 0.5]])
        engine = ImmutableRegionEngine(InvertedIndex(data))
        with pytest.raises(AlgorithmError, match="no tuple"):
            engine.compute(Query([0], [0.5]), k=1)

    def test_non_query_dim_lookup_rejected(self, small_index):
        computation = ImmutableRegionEngine(small_index).compute(
            Query([0, 1], [0.5, 0.5]), k=3
        )
        with pytest.raises(QueryError):
            computation.region(4)


class TestComputationOutputs:
    def test_sequences_cover_all_query_dims(self, small_index):
        query = Query([0, 2, 4], [0.4, 0.5, 0.6])
        computation = ImmutableRegionEngine(small_index).compute(query, k=5)
        assert set(computation.sequences) == {0, 2, 4}

    def test_regions_contain_zero(self, small_index):
        query = Query([0, 1], [0.4, 0.7])
        computation = ImmutableRegionEngine(small_index).compute(query, k=5)
        for dim in (0, 1):
            region = computation.region(dim)
            assert region.lower.delta <= 0.0 <= region.upper.delta

    def test_bounds_within_weight_domain(self, small_index):
        query = Query([0, 1], [0.4, 0.7])
        computation = ImmutableRegionEngine(small_index).compute(query, k=5)
        for dim in (0, 1):
            seq = computation.sequence(dim)
            weight = query.weight_of(dim)
            lo, hi = seq.span
            assert lo >= -weight - 1e-12
            assert hi <= 1.0 - weight + 1e-12

    def test_phi_sequences_have_expected_max_regions(self, small_index):
        query = Query([0, 1], [0.5, 0.5])
        computation = ImmutableRegionEngine(small_index, method="cpt").compute(
            query, k=5, phi=2
        )
        for dim in (0, 1):
            assert len(computation.sequence(dim)) <= 2 * 2 + 1

    def test_result_matches_region_result(self, small_index):
        query = Query([0, 1], [0.5, 0.5])
        computation = ImmutableRegionEngine(small_index).compute(query, k=5)
        for dim in (0, 1):
            assert list(computation.region(dim).result_ids) == computation.result.ids


class TestMetricsAccounting:
    def test_ta_and_region_access_split(self, small_index):
        computation = ImmutableRegionEngine(small_index, method="scan").compute(
            Query([0, 1], [0.5, 0.5]), k=5
        )
        metrics = computation.metrics
        assert metrics.ta_access.random_accesses > 0
        # Scan fetches every evaluated candidate from disk.
        assert (
            metrics.region_access.random_accesses
            >= metrics.evals.evaluated_candidates
        )

    def test_io_seconds_follow_disk_model(self, small_index):
        slow = DiskModel(random_access_ms=50.0)
        fast = DiskModel(random_access_ms=0.5)
        query = Query([0, 1], [0.5, 0.5])
        slow_run = ImmutableRegionEngine(
            small_index, method="scan", disk_model=slow
        ).compute(query, k=5)
        fast_run = ImmutableRegionEngine(
            small_index, method="scan", disk_model=fast
        ).compute(query, k=5)
        assert slow_run.metrics.io_seconds > fast_run.metrics.io_seconds

    def test_phase_seconds_keys(self, small_index):
        computation = ImmutableRegionEngine(small_index).compute(
            Query([0, 1], [0.5, 0.5]), k=5
        )
        seconds = computation.metrics.phase_seconds
        assert "ta" in seconds
        assert "phase2" in seconds
        assert computation.metrics.cpu_seconds >= 0.0

    def test_evaluated_per_dim_sums_to_total(self, small_index):
        computation = ImmutableRegionEngine(small_index, method="scan").compute(
            Query([0, 1], [0.5, 0.5]), k=5
        )
        metrics = computation.metrics
        assert (
            sum(metrics.evaluated_per_dim.values())
            == metrics.evals.evaluated_candidates
        )

    def test_memory_footprint_ordering(self, small_index):
        """Thres keeps the largest structures; Prune the smallest (sparse data)."""
        query = Query([0, 1], [0.5, 0.5])
        footprints = {
            method: ImmutableRegionEngine(small_index, method=method)
            .compute(query, k=5)
            .metrics.memory.total_bytes
            for method in ("scan", "prune", "thres", "cpt")
        }
        assert footprints["thres"] >= footprints["scan"]

    def test_cache_rows_reduces_io(self, small_index):
        query = Query([0, 1], [0.5, 0.5])
        cold = ImmutableRegionEngine(small_index, method="scan").compute(query, k=5)
        warm = ImmutableRegionEngine(
            small_index, method="scan", cache_rows=True
        ).compute(query, k=5)
        assert (
            warm.metrics.region_access.random_accesses
            <= cold.metrics.region_access.random_accesses
        )


class TestDeriveNeighbourResult:
    def test_reorder_swaps(self):
        bound = Bound(0.1, BoundKind.REORDER, rising_id=5, falling_id=3)
        assert derive_neighbour_result([1, 3, 5], bound) == [1, 5, 3]

    def test_composition_replaces_kth(self):
        bound = Bound(0.1, BoundKind.COMPOSITION, rising_id=9, falling_id=5)
        assert derive_neighbour_result([1, 3, 5], bound) == [1, 3, 9]

    def test_domain_returns_none(self):
        assert derive_neighbour_result([1, 2], Bound(0.1, BoundKind.DOMAIN)) is None

    def test_top_tuple_cannot_rise(self):
        bound = Bound(0.1, BoundKind.REORDER, rising_id=1, falling_id=3)
        with pytest.raises(AlgorithmError):
            derive_neighbour_result([1, 3], bound)

    def test_reorder_rising_id_missing_raises_algorithm_error(self):
        bound = Bound(0.1, BoundKind.REORDER, rising_id=99, falling_id=3)
        with pytest.raises(AlgorithmError, match="rising tuple 99"):
            derive_neighbour_result([1, 3, 5], bound)


class TestConvenienceWrapper:
    def test_accepts_dataset_or_index(self, small_index):
        query = Query([0, 1], [0.5, 0.5])
        from_index = compute_immutable_regions(small_index, query, k=3)
        from_data = compute_immutable_regions(small_index.dataset, query, k=3)
        assert from_index.result.ids == from_data.result.ids
        for dim in (0, 1):
            assert from_index.region(dim).lower.delta == pytest.approx(
                from_data.region(dim).lower.delta
            )

    def test_iterative_flag_forwarded(self, small_index):
        query = Query([0, 1], [0.5, 0.5])
        computation = compute_immutable_regions(
            small_index, query, k=3, phi=1, method="cpt", iterative=True
        )
        assert computation.iterative

    def test_scan_defaults_to_iterative_for_phi(self, small_index):
        query = Query([0, 1], [0.5, 0.5])
        computation = compute_immutable_regions(
            small_index, query, k=3, phi=1, method="scan"
        )
        assert computation.iterative
        oneoff = compute_immutable_regions(
            small_index, query, k=3, phi=1, method="cpt"
        )
        assert not oneoff.iterative
