"""Unit tests for RunContext, DimensionView and WorkingBounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Query
from repro.core.context import WorkingBounds
from repro.core.lemma1 import OrderConstraint
from repro.core.regions import BoundKind
from repro.geometry import Line

from .helpers import make_context


class TestDimensionView:
    def test_view_fields_running_example(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 2)
        view = ctx.view(0)
        assert view.dim == 0
        assert view.weight == pytest.approx(0.8)
        assert view.dk_id == 0  # d1
        assert view.dk_score == pytest.approx(0.8)
        assert view.dk_coord == pytest.approx(0.8)
        assert view.result_ids == (1, 0)
        assert view.domain_lower == pytest.approx(-0.8)
        assert view.domain_upper == pytest.approx(0.2)

    def test_view_cached(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 2)
        assert ctx.view(0) is ctx.view(0)
        ctx.invalidate_views()
        assert ctx.view(0) is not None

    def test_result_lines_and_mirroring(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 2)
        view = ctx.view(0)
        lines = view.result_lines()
        assert [l.tuple_id for l in lines] == [1, 0]
        assert lines[0].intercept == pytest.approx(0.81)
        assert lines[0].slope == pytest.approx(0.7)
        mirrored = view.result_lines(mirrored=True)
        assert mirrored[0].slope == pytest.approx(-0.7)

    def test_kth_line(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 2)
        line = ctx.view(0).kth_line()
        assert line == Line(0, ctx.view(0).dk_score, 0.8)


class TestCandidateAccess:
    def test_candidate_records_score_order(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 1)
        records = ctx.candidate_records(0)
        scores = [r.score for r in records]
        assert scores == sorted(scores, reverse=True)

    def test_query_coords_cached_and_correct(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 2)
        coords = ctx.candidate_query_coords(2)
        assert coords.tolist() == pytest.approx([0.1, 0.8])
        assert ctx.candidate_query_coords(2) is coords  # cached object

    def test_evaluation_charges_io_and_counter(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 2)
        view = ctx.view(0)
        bounds = WorkingBounds(view)
        record = ctx.candidate_records(0)[0]
        before = ctx.access.random_accesses
        moved = ctx.evaluate_against_kth(view, record, bounds)
        assert moved  # d3 tightens the lower bound
        assert ctx.access.random_accesses == before + 1
        assert ctx.evals.evaluated_candidates == 1

    def test_charge_candidate_evaluation_returns_coord(
        self, example_dataset, example_query
    ):
        ctx = make_context(example_dataset, example_query, 2)
        coord = ctx.charge_candidate_evaluation(2, 1)
        assert coord == pytest.approx(0.8)
        assert ctx.evals.evaluated_candidates == 1


class TestWorkingBounds:
    def make_bounds(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 2)
        return WorkingBounds(ctx.view(0))

    def test_starts_at_domain(self, example_dataset, example_query):
        bounds = self.make_bounds(example_dataset, example_query)
        assert bounds.lower.kind == BoundKind.DOMAIN
        assert bounds.upper.kind == BoundKind.DOMAIN

    def test_upper_tightening(self, example_dataset, example_query):
        bounds = self.make_bounds(example_dataset, example_query)
        moved = bounds.apply(
            OrderConstraint("upper", 0.05), rising_id=7, falling_id=8,
            kind=BoundKind.COMPOSITION,
        )
        assert moved and bounds.upper.delta == 0.05
        # A weaker constraint must not loosen it back.
        assert not bounds.apply(
            OrderConstraint("upper", 0.1), rising_id=9, falling_id=8,
            kind=BoundKind.COMPOSITION,
        )
        assert bounds.upper.rising_id == 7

    def test_lower_tightening(self, example_dataset, example_query):
        bounds = self.make_bounds(example_dataset, example_query)
        assert bounds.apply(
            OrderConstraint("lower", -0.1), rising_id=7, falling_id=8,
            kind=BoundKind.REORDER,
        )
        assert bounds.lower.delta == -0.1
        assert bounds.lower.kind == BoundKind.REORDER

    def test_none_constraint_ignored(self, example_dataset, example_query):
        bounds = self.make_bounds(example_dataset, example_query)
        assert not bounds.apply(None, rising_id=1, falling_id=2, kind="reorder")
        assert not bounds.apply(
            OrderConstraint("none", 0.0), rising_id=1, falling_id=2, kind="reorder"
        )

    def test_out_of_domain_crossing_keeps_domain_bound(
        self, example_dataset, example_query
    ):
        bounds = self.make_bounds(example_dataset, example_query)
        # Crossing beyond 1 - q_j = 0.2: not binding.
        assert not bounds.apply(
            OrderConstraint("upper", 0.7), rising_id=1, falling_id=2,
            kind=BoundKind.COMPOSITION,
        )
        assert bounds.upper.kind == BoundKind.DOMAIN


class TestResumption:
    def test_resume_counts_phase3(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 2)
        pulled = ctx.resume_next_candidate()
        assert pulled is not None
        assert ctx.evals.phase3_tuples == 1
        # Exhausting returns None without incrementing.
        while ctx.resume_next_candidate() is not None:
            pass
        count = ctx.evals.phase3_tuples
        assert ctx.resume_next_candidate() is None
        assert ctx.evals.phase3_tuples == count

    def test_threshold_totals(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, 2)
        total = ctx.threshold_total()
        manual = sum(
            ctx.query.weight_of(d) * ctx.threshold_component(d)
            for d in (0, 1)
        )
        assert total == pytest.approx(manual)
