"""Tests for candidate partitioning (C0/CH/CL) and the pruning selectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Query
from repro.core.candidates import partition_candidates, pruned_pool

from .helpers import make_context


@pytest.fixture()
def structured_context():
    """A dataset engineered so C(q) contains all three candidate classes.

    Query dims 0 and 1.  Tuple roles (k=2 over scores with q=(0.6, 0.6)):
      - ids 0, 1: clear top-2 result;
      - id 2: non-zero only in dim 1  -> C0 for dim 0, CH for dim 1;
      - id 3: non-zero only in dim 0  -> CH for dim 0, C0 for dim 1;
      - id 4: non-zero in both        -> CL for both dims.
    """
    data = Dataset.from_dense(
        [
            [0.94, 0.93, 0.0],
            [0.92, 0.92, 0.0],
            [0.00, 0.95, 0.0],
            [0.95, 0.00, 0.0],
            [0.93, 0.89, 0.0],
        ]
    )
    query = Query([0, 1], [0.6, 0.6])
    ctx = make_context(data, query, k=2)
    assert set(ctx.outcome.candidates.ids) == {2, 3, 4}
    return ctx


class TestPartition:
    def test_partition_dim0(self, structured_context):
        partition = partition_candidates(structured_context, 0)
        assert [r.tuple_id for r in partition.c0] == [2]
        assert [r.tuple_id for r in partition.ch] == [3]
        assert [r.tuple_id for r in partition.cl] == [4]

    def test_partition_dim1(self, structured_context):
        partition = partition_candidates(structured_context, 1)
        assert [r.tuple_id for r in partition.c0] == [3]
        assert [r.tuple_id for r in partition.ch] == [2]
        assert [r.tuple_id for r in partition.cl] == [4]

    def test_records_carry_scores_and_coords(self, structured_context):
        partition = partition_candidates(structured_context, 0)
        cl_record = partition.cl[0]
        assert cl_record.score == pytest.approx(0.6 * 0.93 + 0.6 * 0.89)
        assert cl_record.coord == pytest.approx(0.93)

    def test_partition_total(self, structured_context):
        assert partition_candidates(structured_context, 0).total == 3

    def test_partition_is_free_of_io(self, structured_context):
        before = structured_context.access.random_accesses
        partition_candidates(structured_context, 0)
        assert structured_context.access.random_accesses == before


class TestSelectors:
    @staticmethod
    def _context_with_candidates(rows, candidate_ids):
        """Build a context, force-inserting unencountered rows into C(q)."""
        data = Dataset.from_dense(rows)
        query = Query([0, 1], [0.6, 0.6])
        ctx = make_context(data, query, k=2)
        scores = data.scores(query.dims, query.weights)
        for tid in candidate_ids:
            if tid not in ctx.outcome.candidates:
                ctx.outcome.candidates.insert(tid, float(scores[tid]))
        return ctx

    def test_best_c0_by_score(self):
        ctx = self._context_with_candidates(
            [
                [0.9, 0.9],   # result
                [0.85, 0.8],  # result
                [0.0, 0.7],   # C0 for dim 0, score 0.42
                [0.0, 0.5],   # C0 for dim 0, score 0.30
            ],
            candidate_ids=[2, 3],
        )
        partition = partition_candidates(ctx, 0)
        assert [r.tuple_id for r in partition.best_c0(1)] == [2]
        assert [r.tuple_id for r in partition.best_c0(2)] == [2, 3]

    def test_best_ch_by_coordinate(self):
        ctx = self._context_with_candidates(
            [
                [0.9, 0.9],
                [0.85, 0.8],
                [0.5, 0.0],  # CH for dim 0, coord 0.5
                [0.6, 0.0],  # CH for dim 0, coord 0.6  <- best
            ],
            candidate_ids=[2, 3],
        )
        partition = partition_candidates(ctx, 0)
        assert [r.tuple_id for r in partition.best_ch(1)] == [3]
        assert [r.tuple_id for r in partition.best_ch(2)] == [3, 2]

    def test_selectors_handle_empty_sets(self, structured_context):
        partition = partition_candidates(structured_context, 0)
        # Asking for more than available returns what exists.
        assert len(partition.best_c0(5)) == 1
        assert len(partition.best_ch(5)) == 1


class TestPrunedPool:
    def test_both_sides_phi0(self, structured_context):
        partition = partition_candidates(structured_context, 0)
        pool = pruned_pool(partition, phi=0, side="both")
        assert {r.tuple_id for r in pool} == {2, 3, 4}

    def test_left_excludes_ch(self, structured_context):
        partition = partition_candidates(structured_context, 0)
        pool = pruned_pool(partition, phi=0, side="left")
        assert {r.tuple_id for r in pool} == {2, 4}

    def test_right_excludes_c0(self, structured_context):
        partition = partition_candidates(structured_context, 0)
        pool = pruned_pool(partition, phi=0, side="right")
        assert {r.tuple_id for r in pool} == {3, 4}

    def test_pool_sorted_by_score(self, structured_context):
        partition = partition_candidates(structured_context, 0)
        pool = pruned_pool(partition, phi=0, side="both")
        scores = [r.score for r in pool]
        assert scores == sorted(scores, reverse=True)

    def test_phi_scales_retention(self):
        """With φ>0 the pool keeps φ+1 tuples from each prunable set."""
        rows = [[0.9, 0.9], [0.85, 0.8]]
        rows += [[0.0, 0.5 + 0.02 * i] for i in range(5)]  # five C0-for-dim0
        rows += [[0.3 + 0.02 * i, 0.0] for i in range(5)]  # five CH-for-dim0
        ctx = TestSelectors._context_with_candidates(rows, list(range(2, 12)))
        partition = partition_candidates(ctx, 0)
        assert len(partition.c0) == 5 and len(partition.ch) == 5
        assert len(pruned_pool(partition, phi=0, side="both")) == 2
        pool3 = pruned_pool(partition, phi=2, side="both")
        assert len(pool3) == 6

    def test_bad_side_rejected(self, structured_context):
        partition = partition_candidates(structured_context, 0)
        with pytest.raises(Exception):
            pruned_pool(partition, phi=0, side="up")
