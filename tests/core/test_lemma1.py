"""Unit tests for Lemma 1 constraint computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lemma1 import (
    ConstraintSide,
    constraint_against,
    crossing_delta,
    order_constraint,
)
from repro.errors import AlgorithmError


class TestOrderConstraint:
    def test_case_a_upper_bound(self):
        """behind has larger coordinate: it catches up as q_j grows."""
        constraint = order_constraint(0.81, 0.7, 0.80, 0.8)
        assert constraint.side == ConstraintSide.UPPER
        assert constraint.delta == pytest.approx(0.1)
        assert constraint.restricts_upper and not constraint.restricts_lower

    def test_case_b_lower_bound(self):
        """behind has smaller coordinate: it catches up as q_j shrinks."""
        constraint = order_constraint(0.80, 0.8, 0.48, 0.1)
        assert constraint.side == ConstraintSide.LOWER
        assert constraint.delta == pytest.approx(-16.0 / 35.0)

    def test_equal_coordinates_no_constraint(self):
        constraint = order_constraint(0.9, 0.5, 0.4, 0.5)
        assert constraint.side == ConstraintSide.NONE

    def test_tied_scores_give_zero_crossing(self):
        constraint = order_constraint(0.5, 0.2, 0.5, 0.7)
        assert constraint.side == ConstraintSide.UPPER
        assert constraint.delta == 0.0

    def test_wrong_order_rejected(self):
        with pytest.raises(AlgorithmError):
            order_constraint(0.4, 0.2, 0.5, 0.7)

    @pytest.mark.parametrize("seed", range(20))
    def test_crossing_point_is_exact(self, seed):
        """At delta just below/above the crossing, the order holds/flips."""
        rng = np.random.default_rng(seed)
        ahead_score = float(rng.uniform(0.5, 1.0))
        behind_score = float(rng.uniform(0.0, ahead_score))
        ahead_coord, behind_coord = rng.uniform(0.0, 1.0, size=2)
        if ahead_coord == behind_coord:
            return
        constraint = order_constraint(ahead_score, ahead_coord, behind_score, behind_coord)
        delta = constraint.delta
        eps = 1e-6
        inside = delta - eps if constraint.side == ConstraintSide.UPPER else delta + eps
        outside = delta + eps if constraint.side == ConstraintSide.UPPER else delta - eps
        gap_inside = (ahead_score + inside * ahead_coord) - (
            behind_score + inside * behind_coord
        )
        gap_outside = (ahead_score + outside * ahead_coord) - (
            behind_score + outside * behind_coord
        )
        assert gap_inside > 0.0
        assert gap_outside < 0.0


class TestCrossingDelta:
    def test_matches_formula(self):
        assert crossing_delta(0.81, 0.7, 0.80, 0.8) == pytest.approx(0.1)

    def test_equal_coordinates_rejected(self):
        with pytest.raises(AlgorithmError):
            crossing_delta(0.8, 0.5, 0.4, 0.5)


class TestConstraintAgainst:
    def test_returns_none_for_parallel(self):
        assert constraint_against(0.9, 0.5, 0.5, 0.5) is None

    def test_returns_constraint_otherwise(self):
        constraint = constraint_against(0.9, 0.5, 0.5, 0.9)
        assert constraint is not None
        assert constraint.side == ConstraintSide.UPPER
