"""Behavioural tests for the φ=0 phases (Algorithms 1–2) and method costs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Dataset,
    InvertedIndex,
    Query,
    brute_force_bounds_phi0,
    compute_immutable_regions,
)
from repro.core.context import WorkingBounds
from repro.core.regions import BoundKind
from repro.core.scan import phase1_reorderings

from .helpers import make_context


class TestPhase1:
    def test_interim_bounds_running_example(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, k=2)
        view = ctx.view(0)
        bounds = WorkingBounds(view)
        phase1_reorderings(ctx, view, bounds)
        # Figure 5 Phase 1: IR1 = [-0.8, 0.1).
        assert bounds.lower.delta == pytest.approx(-0.8)
        assert bounds.lower.kind == BoundKind.DOMAIN
        assert bounds.upper.delta == pytest.approx(0.1)
        assert bounds.upper.kind == BoundKind.REORDER

    def test_interim_bounds_dim1(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, k=2)
        view = ctx.view(1)
        bounds = WorkingBounds(view)
        phase1_reorderings(ctx, view, bounds)
        # Figure 5 Phase 1: IR2 = (-1/18, 0.5].
        assert bounds.lower.delta == pytest.approx(-1.0 / 18.0)
        assert bounds.upper.delta == pytest.approx(0.5)

    def test_k1_has_no_reorder_constraints(self):
        data = Dataset.from_dense([[0.9, 0.2], [0.1, 0.8]])
        ctx = make_context(data, Query([0, 1], [0.5, 0.5]), k=1)
        view = ctx.view(0)
        bounds = WorkingBounds(view)
        phase1_reorderings(ctx, view, bounds)
        assert bounds.lower.kind == BoundKind.DOMAIN
        assert bounds.upper.kind == BoundKind.DOMAIN
        assert ctx.evals.result_comparisons == 0

    def test_result_comparison_count(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, k=2)
        view = ctx.view(0)
        phase1_reorderings(ctx, view, WorkingBounds(view))
        assert ctx.evals.result_comparisons == 1  # k-1 pairs


class TestPhase3:
    def test_resume_discovers_unseen_constraint(self):
        """A tuple never encountered by TA must still bound the region.

        Construct data where TA (round-robin) stops before an unseen tuple
        that nonetheless limits the lower bound of dimension 0.
        """
        rng = np.random.default_rng(11)
        for _ in range(50):
            dense = rng.random((40, 4)) * (rng.random((40, 4)) < 0.7)
            data = Dataset.from_dense(dense)
            dims = [d for d in range(4) if data.column_nnz(d) > 0][:2]
            if len(dims) < 2:
                continue
            query = Query(dims, [0.6, 0.6])
            computation = compute_immutable_regions(
                data, query, k=3, method="scan", probing="round_robin"
            )
            for dim in dims:
                expected = brute_force_bounds_phi0(data, query, 3, dim)
                region = computation.region(dim)
                assert region.lower.delta == pytest.approx(expected[0])
                assert region.upper.delta == pytest.approx(expected[1])

    def test_phase3_inserts_into_candidates_for_later_dims(
        self, example_dataset, example_query
    ):
        """§4: tuples found in Phase 3 join C(q) for the next dimension."""
        computation = compute_immutable_regions(
            example_dataset, example_query, k=2, method="scan", probing="max_impact"
        )
        # With max-impact probing TA terminates with an empty C(q); Phase 3
        # of dim 0 must then discover d3 (id 2), which is subsequently
        # evaluated as a normal candidate for dim 1.
        assert computation.metrics.evals.phase3_tuples >= 1
        assert computation.metrics.evaluated_per_dim[1] >= 1
        # Regions are still exact.
        assert computation.region(0).lower.delta == pytest.approx(-16.0 / 35.0)


class TestMethodCostOrdering:
    """CPT evaluates no more candidates than Prune/Thres, which beat Scan."""

    @pytest.fixture(scope="class")
    def workload_costs(self):
        rng = np.random.default_rng(5)
        dense = rng.random((300, 8)) * (rng.random((300, 8)) < 0.35)
        data = Dataset.from_dense(dense)
        index = InvertedIndex(data)
        dims = [d for d in range(8) if data.column_nnz(d) > 5][:4]
        query = Query(dims, [0.5] * len(dims))
        costs = {}
        bounds = {}
        for method in ("scan", "prune", "thres", "cpt"):
            computation = compute_immutable_regions(
                index, query, k=10, method=method, probing="round_robin"
            )
            costs[method] = computation.metrics.evals.evaluated_candidates
            bounds[method] = {
                dim: (
                    computation.region(dim).lower.delta,
                    computation.region(dim).upper.delta,
                )
                for dim in dims
            }
        return costs, bounds

    def test_all_methods_agree_on_bounds(self, workload_costs):
        _, bounds = workload_costs
        reference = bounds["scan"]
        for method in ("prune", "thres", "cpt"):
            for dim, (lo, hi) in bounds[method].items():
                assert lo == pytest.approx(reference[dim][0])
                assert hi == pytest.approx(reference[dim][1])

    def test_scan_is_most_expensive(self, workload_costs):
        costs, _ = workload_costs
        assert costs["scan"] >= costs["prune"]
        assert costs["scan"] >= costs["thres"]

    def test_cpt_is_cheapest(self, workload_costs):
        costs, _ = workload_costs
        assert costs["cpt"] <= costs["prune"]
        assert costs["cpt"] <= costs["thres"]
