"""Unit tests for the supervised transport and its circuit breakers.

Everything runs against fake inner transports and injectable clocks —
the only real sleeping happens in the timeout tests, bounded to tens of
milliseconds.
"""

from __future__ import annotations

import time

import pytest

from repro.core.supervision import (
    BREAKER_STATES,
    CircuitBreaker,
    InjectedWorkerCrash,
    SupervisedTransport,
    SupervisionPolicy,
)
from repro.errors import DeadlineExceeded, ShardUnavailable
from repro.service import Deadline, FaultPlan, FaultSpec


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class ScriptedInner:
    """Inner transport whose per-call outcomes are scripted up front.

    Each entry of *script* is a value (returned), an exception instance
    (raised), or a float (seconds to really sleep before returning it).
    """

    def __init__(self, script):
        self.script = list(script)
        self.calls = []
        self.respawned = []
        self.retired = 0
        self.closed = False

    def call(self, sid, op, args):
        self.calls.append((sid, op))
        outcome = self.script.pop(0) if self.script else "ok"
        if isinstance(outcome, Exception):
            raise outcome
        if isinstance(outcome, float):
            time.sleep(outcome)
        return outcome

    def respawn(self, sid):
        self.respawned.append(sid)

    def retire(self):
        self.retired += 1

    def close(self):
        self.closed = True


def make_transport(script, n_shards=2, fault_plan=None, clock=None, **policy):
    policy.setdefault("backoff_base", 0.0)  # no real backoff sleeps in tests
    kwargs = {"clock": clock} if clock is not None else {}
    return SupervisedTransport(
        ScriptedInner(script),
        n_shards,
        policy=SupervisionPolicy(**policy),
        fault_plan=fault_plan,
        **kwargs,
    )


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after=1.0, clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # concurrent caller rejected

    def test_probe_outcome_closes_or_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.record_failure()  # trip again
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # failed probe
        assert breaker.state == "open" and not breaker.allow()

    def test_transitions_counted(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0, clock=clock)
        breaker.record_failure()  # closed -> open
        clock.advance(1.0)
        _ = breaker.state  # open -> half_open
        breaker.record_success()  # half_open -> closed
        assert breaker.transitions == 3
        assert set(BREAKER_STATES) == {"closed", "open", "half_open"}


class TestSupervisedCall:
    def test_plain_success_passes_through(self):
        transport = make_transport(["result"])
        try:
            assert transport.call(0, "op", ()) == "result"
            assert transport.stats.failures == 0
        finally:
            transport.close()

    def test_crash_respawns_and_retries(self):
        transport = make_transport(
            [InjectedWorkerCrash("boom"), "recovered"], max_retries=2
        )
        try:
            assert transport.call(1, "op", ()) == "recovered"
            assert transport.stats.retries == 1
            assert transport.stats.respawns == 1
            assert transport.inner.respawned == [1]
        finally:
            transport.close()

    def test_retries_exhausted_raises_shard_unavailable(self):
        transport = make_transport(
            [InjectedWorkerCrash("a"), InjectedWorkerCrash("b")], max_retries=1
        )
        try:
            with pytest.raises(ShardUnavailable) as excinfo:
                transport.call(0, "op", ())
            assert excinfo.value.shard == 0
            assert transport.stats.retries == 1
            assert transport.stats.failures == 2
        finally:
            transport.close()

    def test_breaker_opens_and_fails_fast(self):
        clock = FakeClock()
        transport = make_transport(
            [InjectedWorkerCrash("a"), InjectedWorkerCrash("b")],
            clock=clock,
            max_retries=0,
            failure_threshold=2,
        )
        try:
            for _ in range(2):
                with pytest.raises(ShardUnavailable):
                    transport.call(0, "op", ())
            # Circuit open: the inner transport is never touched again.
            n_calls = len(transport.inner.calls)
            with pytest.raises(ShardUnavailable, match="circuit open"):
                transport.call(0, "op", ())
            assert len(transport.inner.calls) == n_calls
            assert transport.stats.open_rejections == 1
            assert transport.breaker_states()[0] == "open"
            # Other shards are unaffected.
            assert transport.call(1, "op", ()) == "ok"
        finally:
            transport.close()

    def test_call_timeout_bounds_a_stalled_worker(self):
        transport = make_transport([0.25], call_timeout=0.02, max_retries=0)
        try:
            start = time.perf_counter()
            with pytest.raises(ShardUnavailable, match="timed out"):
                transport.call(0, "op", ())
            assert time.perf_counter() - start < 0.2
            assert transport.stats.timeouts == 1
        finally:
            transport.close()

    def test_timeout_then_successful_retry(self):
        """A stalled call times out, the retry lands on a healthy worker."""
        transport = make_transport(
            [0.25, "after-stall"], call_timeout=0.02, max_retries=1
        )
        try:
            assert transport.call(0, "op", ()) == "after-stall"
            assert transport.stats.timeouts == 1
            assert transport.stats.retries == 1
        finally:
            transport.close()

    def test_deadline_bounds_a_stalled_worker(self):
        """A stalled shard consumes at most the budget (+ small epsilon),
        never the stall duration — the chaos acceptance criterion."""
        transport = make_transport([0.5], max_retries=2)
        try:
            deadline = Deadline(0.05)
            start = time.perf_counter()
            with pytest.raises((DeadlineExceeded, ShardUnavailable)):
                transport.call(0, "op", (), deadline=deadline)
            elapsed = time.perf_counter() - start
            assert elapsed < 0.3  # budget + epsilon, nowhere near the 0.5s stall
        finally:
            transport.close()

    def test_expired_deadline_raises_before_dispatch(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        clock.advance(0.2)
        transport = make_transport(["never"])
        try:
            with pytest.raises(DeadlineExceeded):
                transport.call(0, "op", (), deadline=deadline)
            assert transport.inner.calls == []
        finally:
            transport.close()

    def test_injected_fault_plan_drives_the_crash_path(self):
        plan = FaultPlan([FaultSpec("crash", 0, 0)])
        transport = make_transport(["fine"], fault_plan=plan, max_retries=1)
        try:
            assert transport.call(0, "op", ()) == "fine"
            assert plan.counters.crashes == 1
            assert transport.stats.respawns == 1
            assert plan.exhausted
        finally:
            transport.close()

    def test_respawn_falls_back_to_retire(self):
        """An inner transport without respawn() gets retire() instead."""

        class RetireOnly:
            def __init__(self):
                self.retired = 0
                self.script = [InjectedWorkerCrash("x"), "ok"]

            def call(self, sid, op, args):
                outcome = self.script.pop(0)
                if isinstance(outcome, Exception):
                    raise outcome
                return outcome

            def retire(self):
                self.retired += 1

            def close(self):
                pass

        retire_only = RetireOnly()
        transport = SupervisedTransport(
            retire_only, 1, policy=SupervisionPolicy(max_retries=1, backoff_base=0.0)
        )
        try:
            assert transport.call(0, "op", ()) == "ok"
            assert retire_only.retired == 1
        finally:
            transport.close()


class TestSupervisedMap:
    def test_fanout_success(self):
        transport = make_transport(["a", "b"], n_shards=2)
        try:
            assert transport.map([(0, "op", ()), (1, "op", ())]) == ["a", "b"]
        finally:
            transport.close()

    def test_single_call_short_circuit(self):
        transport = make_transport(["only"])
        try:
            assert transport.map([(0, "op", ())]) == ["only"]
        finally:
            transport.close()

    def test_terminal_failure_surfaces_after_all_calls_settle(self):
        transport = make_transport(
            [InjectedWorkerCrash("x"), InjectedWorkerCrash("y")],
            n_shards=2,
            max_retries=0,
        )
        try:
            with pytest.raises(ShardUnavailable):
                transport.map([(0, "op", ()), (1, "op", ())])
            # Both calls settled before the failure surfaced.
            assert len(transport.inner.calls) == 2
        finally:
            transport.close()

    def test_snapshot_is_json_safe(self):
        plan = FaultPlan([FaultSpec("crash", 0, 0)])
        transport = make_transport(["fine"], fault_plan=plan, max_retries=1)
        try:
            transport.call(0, "op", ())
            snapshot = transport.supervision_snapshot()
            assert snapshot["respawns"] == 1
            assert snapshot["faults_injected"]["crashes"] == 1
            assert snapshot["breaker_states"] == ["closed", "closed"]
            import json

            json.dumps(snapshot)  # must serialize for the stats endpoint
        finally:
            transport.close()
