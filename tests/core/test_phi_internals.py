"""Unit tests for the one-off φ≥0 machinery internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Query
from repro.core.phi import ActiveTopK, SideOutcome, assemble_sequence, one_off_side
from repro.core.regions import Bound, BoundKind
from repro.errors import AlgorithmError
from repro.geometry import Line
from repro.geometry.ksweep import PerturbationEvent

from .helpers import make_context


class TestActiveTopK:
    def make(self, k=2, x_max=1.0, max_events=3):
        lines = [Line(1, 0.9, 0.1), Line(2, 0.8, 0.2)]
        return ActiveTopK(lines, k=k, x_max=x_max, count_reorderings=True,
                          max_events=max_events)

    def test_initial_no_events(self):
        active = self.make()
        assert active.events == []
        assert active.horizon == 1.0

    def test_add_crossing_line_creates_event(self):
        active = self.make()
        riser = Line(3, 0.5, 0.9)
        assert active.crosses(riser)
        active.add_line(riser)
        assert len(active.events) >= 1
        assert active.events[0].rising_id == 3

    def test_add_non_crossing_line_no_event(self):
        active = self.make()
        low = Line(3, 0.1, 0.11)
        assert not active.crosses(low)

    def test_duplicate_line_rejected(self):
        active = self.make()
        with pytest.raises(AlgorithmError):
            active.add_line(Line(1, 0.2, 0.2))

    def test_horizon_tightens_with_quota(self):
        active = ActiveTopK(
            [Line(1, 0.9, 0.0)], k=1, x_max=1.0, count_reorderings=True,
            max_events=1,
        )
        before = active.horizon
        active.add_line(Line(2, 0.5, 0.9))  # crosses at ~0.444
        assert active.horizon < before
        assert active.horizon == pytest.approx(active.events[0].x)

    def test_klevel_reflects_added_lines(self):
        active = ActiveTopK(
            [Line(1, 0.9, 0.0)], k=1, x_max=1.0, count_reorderings=True,
            max_events=5,
        )
        active.add_line(Line(2, 0.5, 0.9))
        # Beyond the crossing the k-level follows the new line.
        assert active.klevel.value_at(0.9) == pytest.approx(0.5 + 0.9 * 0.9)


def event(x, kind="composition", rising=9, falling=1, topk=(9,)):
    return PerturbationEvent(
        x=x, kind=kind, rising_id=rising, falling_id=falling, topk_after=topk
    )


class TestAssembleSequence:
    def test_no_events_single_domain_region(self):
        seq = assemble_sequence(
            dim=0,
            weight=0.5,
            phi=2,
            result_ids=(1, 2),
            left=SideOutcome(events=[], domain=0.5),
            right=SideOutcome(events=[], domain=0.5),
        )
        assert len(seq) == 1
        region = seq.current
        assert region.lower.delta == -0.5 and region.lower.kind == BoundKind.DOMAIN
        assert region.upper.delta == 0.5 and region.upper.kind == BoundKind.DOMAIN

    def test_full_quota_truncates_outermost(self):
        """With φ+1 events per side, the (φ+1)-th only caps region φ."""
        right = SideOutcome(
            events=[event(0.1, topk=(9, 2)), event(0.2, topk=(9, 8))],
            domain=0.5,
        )
        seq = assemble_sequence(
            dim=0, weight=0.5, phi=1, result_ids=(1, 2),
            left=SideOutcome(events=[], domain=0.5), right=right,
        )
        # current + exactly one region to the right (capped at 0.2).
        assert len(seq) == 2
        outer = seq.regions[-1]
        assert outer.lower.delta == pytest.approx(0.1)
        assert outer.upper.delta == pytest.approx(0.2)
        assert outer.result_ids == (9, 2)

    def test_partial_events_extend_to_domain(self):
        right = SideOutcome(events=[event(0.1, topk=(9, 2))], domain=0.5)
        seq = assemble_sequence(
            dim=0, weight=0.5, phi=2, result_ids=(1, 2),
            left=SideOutcome(events=[], domain=0.5), right=right,
        )
        outer = seq.regions[-1]
        assert outer.upper.delta == pytest.approx(0.5)
        assert outer.upper.kind == BoundKind.DOMAIN

    def test_left_events_mirrored_to_negative_deltas(self):
        left = SideOutcome(events=[event(0.2, topk=(9, 2))], domain=0.5)
        seq = assemble_sequence(
            dim=0, weight=0.5, phi=1, result_ids=(1, 2),
            left=left, right=SideOutcome(events=[], domain=0.5),
        )
        assert seq.current.lower.delta == pytest.approx(-0.2)
        leftmost = seq.regions[0]
        assert leftmost.result_ids == (9, 2)
        assert leftmost.lower.delta == pytest.approx(-0.5)

    def test_current_index_counts_left_regions(self):
        left = SideOutcome(events=[event(0.2, topk=(9, 2))], domain=0.5)
        right = SideOutcome(events=[event(0.1, topk=(8, 1))], domain=0.5)
        seq = assemble_sequence(
            dim=0, weight=0.5, phi=1, result_ids=(1, 2), left=left, right=right
        )
        assert seq.current_index == 1
        assert len(seq) == 3

    def test_zero_domain_side(self):
        """weight == 1 leaves no room on the right: upper bound pinned at 0."""
        seq = assemble_sequence(
            dim=0, weight=1.0, phi=1, result_ids=(1,),
            left=SideOutcome(events=[], domain=1.0),
            right=SideOutcome(events=[], domain=0.0),
        )
        assert seq.current.upper.delta == 0.0


class TestOneOffSide:
    def test_zero_weight_domain_short_circuits(self):
        data = Dataset.from_dense([[1.0, 0.5], [0.9, 0.4]])
        query = Query([0, 1], [1.0, 0.5])  # weight 1.0: right domain is 0
        ctx = make_context(data, query, 1)
        ctx.phi = 1
        view = ctx.view(0)
        outcome = one_off_side(ctx, view, mirrored=False, policy="cpt")
        assert outcome.domain == 0.0
        assert outcome.events == []

    def test_phase3_discovers_unseen_riser(self):
        """A tuple TA never met still produces its event via resumption."""
        rng = np.random.default_rng(23)
        dense = rng.random((60, 3)) * (rng.random((60, 3)) < 0.8)
        data = Dataset.from_dense(dense)
        query = Query([0, 1], [0.6, 0.6])
        from repro import brute_force_sequence, compute_immutable_regions

        computation = compute_immutable_regions(data, query, 3, method="cpt", phi=2)
        for dim in (0, 1):
            oracle = brute_force_sequence(data, query, 3, dim, phi=2)
            got = [(round(r.lower.delta, 9), round(r.upper.delta, 9))
                   for r in computation.sequence(dim)]
            expected = [(round(r.lower.delta, 9), round(r.upper.delta, 9))
                        for r in oracle]
            assert got == expected
