"""Golden tests: every number from the paper's running example.

Figure 1 (dataset, query, IRs), Figure 5 (Scan phase trace values), and the
§1 φ=1 walk-through.  Paper tuples d1..d4 map to library ids 0..3.
"""

from __future__ import annotations

import pytest

from repro import METHODS, ImmutableRegionEngine, compute_immutable_regions
from repro.core.regions import BoundKind

# Exact golden values from the paper.
IR1 = (-16.0 / 35.0, 0.1)
IR2 = (-1.0 / 18.0, 0.5)


@pytest.fixture(params=METHODS)
def computation(request, example_dataset, example_query):
    return compute_immutable_regions(
        example_dataset, example_query, k=2, method=request.param
    )


class TestFigure1:
    def test_result_is_d2_d1(self, computation):
        assert computation.result.ids == [1, 0]

    def test_scores(self, computation):
        assert computation.result.scores.tolist() == pytest.approx([0.81, 0.80])

    def test_ir1(self, computation):
        region = computation.region(0)
        assert region.lower.delta == pytest.approx(IR1[0])
        assert region.upper.delta == pytest.approx(IR1[1])

    def test_ir2(self, computation):
        region = computation.region(1)
        assert region.lower.delta == pytest.approx(IR2[0])
        assert region.upper.delta == pytest.approx(IR2[1])

    def test_ir1_slider_interface(self, computation):
        """The l_j/u_j marks of the Figure 1 slide bars, in absolute weights."""
        lo, hi = computation.immutable_interval(0)
        assert lo == pytest.approx(0.8 - 16.0 / 35.0)
        assert hi == pytest.approx(0.9)

    def test_ir2_upper_is_domain_bound(self, computation):
        """IR2's upper end is the weight domain limit 1 - q2 (closed)."""
        region = computation.region(1)
        assert region.upper.kind == BoundKind.DOMAIN
        assert region.upper.closed

    def test_ir1_bounds_are_crossings(self, computation):
        region = computation.region(0)
        # u1 = 0.1: d1 (id 0) overtakes d2 (id 1) — a reordering.
        assert region.upper.kind == BoundKind.REORDER
        assert region.upper.rising_id == 0
        assert region.upper.falling_id == 1
        # l1 = -16/35: d3 (id 2) overtakes d1 (id 0) — composition change.
        assert region.lower.kind == BoundKind.COMPOSITION
        assert region.lower.rising_id == 2
        assert region.lower.falling_id == 0


class TestFigure5PhaseValues:
    """Intermediate values of the Scan trace in Figure 5."""

    def test_phase1_interim_ir1(self, example_dataset, example_query):
        from repro.core.context import WorkingBounds
        from repro.core.scan import phase1_reorderings
        from repro.storage import InvertedIndex

        engine = ImmutableRegionEngine(InvertedIndex(example_dataset), method="scan")
        computation = engine.compute(example_query, k=2)
        # Phase 1 alone gives IR1 = [-0.8, 0.1): reproduce via the raw phase.
        # Rebuild a context through a fresh engine internals run:
        from repro.core import engine as engine_mod  # noqa: F401  (doc import)

        # Direct check of the documented interim bounds via Lemma 1:
        # maintain S(d1) <= S(d2): crossing at 0.1 (upper); no lower reorder.
        region = computation.region(0)
        assert region.upper.delta == pytest.approx(0.1)

    def test_phase2_values_dim0(self, example_dataset, example_query):
        """d3 constrains IR1's lower bound to -16/35 but not the upper."""
        computation = compute_immutable_regions(
            example_dataset, example_query, k=2, method="scan"
        )
        region = computation.region(0)
        assert region.lower.delta == pytest.approx(-16.0 / 35.0)
        assert region.lower.rising_id == 2

    def test_phase3_no_resume_needed(self, example_dataset, example_query):
        """Figure 5: the Phase 3 tests pass without resuming TA, so d4 is
        never fetched and exactly one candidate (d3) is ever evaluated per
        dimension by Scan.  (Round-robin probing, matching the Figure 2
        trace that produced C(q) = [d3].)"""
        computation = compute_immutable_regions(
            example_dataset, example_query, k=2, method="scan", probing="round_robin"
        )
        assert computation.metrics.evals.phase3_tuples == 0
        assert computation.metrics.evaluated_per_dim == {0: 1, 1: 1}

    def test_max_impact_probing_same_regions(self, example_dataset, example_query):
        """§7.1's probing enhancement changes the trace but never the regions."""
        rr = compute_immutable_regions(
            example_dataset, example_query, k=2, method="scan", probing="round_robin"
        )
        mi = compute_immutable_regions(
            example_dataset, example_query, k=2, method="scan", probing="max_impact"
        )
        for dim in (0, 1):
            assert rr.region(dim).lower.delta == pytest.approx(mi.region(dim).lower.delta)
            assert rr.region(dim).upper.delta == pytest.approx(mi.region(dim).upper.delta)


class TestPhi1WalkThrough:
    """§1: regions for up to φ=1 perturbations on q1."""

    @pytest.fixture(params=METHODS)
    def sequence(self, request, example_dataset, example_query):
        computation = compute_immutable_regions(
            example_dataset, example_query, k=2, method=request.param, phi=1
        )
        return computation.sequence(0)

    def test_three_regions(self, sequence):
        assert len(sequence) == 3

    def test_left_region(self, sequence):
        region = sequence.regions[0]
        assert region.lower.delta == pytest.approx(-0.55)
        assert region.upper.delta == pytest.approx(-16.0 / 35.0)
        assert list(region.result_ids) == [1, 2]  # [d2, d3]

    def test_current_region(self, sequence):
        region = sequence.current
        assert region.lower.delta == pytest.approx(-16.0 / 35.0)
        assert region.upper.delta == pytest.approx(0.1)
        assert list(region.result_ids) == [1, 0]  # [d2, d1]

    def test_right_region_capped_by_domain(self, sequence):
        region = sequence.regions[2]
        assert region.lower.delta == pytest.approx(0.1)
        assert region.upper.delta == pytest.approx(0.2)  # 1 - q1
        assert region.upper.kind == BoundKind.DOMAIN
        assert list(region.result_ids) == [0, 1]  # [d1, d2]

    def test_current_index(self, sequence):
        assert sequence.current_index == 1

    def test_region_lookup_by_delta(self, sequence):
        assert sequence.region_for(-0.5).result_ids == (1, 2)
        assert sequence.region_for(0.0).result_ids == (1, 0)
        assert sequence.region_for(0.15).result_ids == (0, 1)


class TestNeighbourResults:
    def test_next_result_above_dim0(self, example_dataset, example_query):
        computation = compute_immutable_regions(
            example_dataset, example_query, k=2, method="cpt"
        )
        # Past u1 = 0.1 the order flips to [d1, d2].
        assert computation.next_result_above(0) == [0, 1]

    def test_next_result_below_dim0(self, example_dataset, example_query):
        computation = compute_immutable_regions(
            example_dataset, example_query, k=2, method="cpt"
        )
        # Past l1 = -16/35 d3 replaces d1: [d2, d3].
        assert computation.next_result_below(0) == [1, 2]

    def test_next_result_above_dim1_is_domain(self, example_dataset, example_query):
        computation = compute_immutable_regions(
            example_dataset, example_query, k=2, method="cpt"
        )
        # IR2's upper bound is the domain limit: no further result exists.
        assert computation.next_result_above(1) is None
