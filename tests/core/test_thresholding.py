"""Behavioural tests for Algorithm 3 (candidate thresholding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Query
from repro.core.context import WorkingBounds
from repro.core.scan import phase1_reorderings
from repro.core.thresholding import thresholding_phase2

from .helpers import make_context


def run_thresholding(data, query, k, dim):
    """Phase 1 + thresholded Phase 2 over the full candidate list."""
    ctx = make_context(data, query, k)
    view = ctx.view(dim)
    bounds = WorkingBounds(view)
    phase1_reorderings(ctx, view, bounds)
    pool = ctx.candidate_records(dim)
    thresholding_phase2(ctx, view, bounds, pool)
    return ctx, bounds


def run_scan_phase2(data, query, k, dim):
    ctx = make_context(data, query, k)
    view = ctx.view(dim)
    bounds = WorkingBounds(view)
    phase1_reorderings(ctx, view, bounds)
    for record in ctx.candidate_records(dim):
        ctx.evaluate_against_kth(view, record, bounds)
    return ctx, bounds


@pytest.fixture(scope="module")
def crowded():
    """A dataset whose TA run leaves a large candidate list."""
    rng = np.random.default_rng(17)
    dense = 0.5 + 0.5 * rng.random((300, 4))  # high values: TA digs deep
    data = Dataset.from_dense(dense)
    return data, Query([0, 1, 2], [0.5, 0.6, 0.4])


class TestCorrectness:
    def test_same_bounds_as_exhaustive_phase2(self, crowded):
        data, query = crowded
        for dim in (0, 1, 2):
            _, thres_bounds = run_thresholding(data, query, 8, dim)
            _, scan_bounds = run_scan_phase2(data, query, 8, dim)
            assert thres_bounds.lower.delta == pytest.approx(scan_bounds.lower.delta)
            assert thres_bounds.upper.delta == pytest.approx(scan_bounds.upper.delta)

    def test_empty_pool_is_noop(self, example_dataset, example_query):
        ctx = make_context(example_dataset, example_query, k=4)  # all tuples in R
        view = ctx.view(0)
        bounds = WorkingBounds(view)
        thresholding_phase2(ctx, view, bounds, [])
        assert bounds.lower.delta == view.domain_lower
        assert bounds.upper.delta == view.domain_upper
        assert ctx.evals.evaluated_candidates == 0


class TestEarlyTermination:
    def test_evaluates_fewer_than_exhaustive(self, crowded):
        data, query = crowded
        thres_total = scan_total = 0
        for dim in (0, 1, 2):
            thres_ctx, _ = run_thresholding(data, query, 8, dim)
            scan_ctx, _ = run_scan_phase2(data, query, 8, dim)
            thres_total += thres_ctx.evals.evaluated_candidates
            scan_total += scan_ctx.evals.evaluated_candidates
        assert scan_total > 0
        assert thres_total < scan_total

    def test_termination_checks_recorded(self, crowded):
        data, query = crowded
        ctx, _ = run_thresholding(data, query, 8, 0)
        assert ctx.evals.termination_checks > 0

    def test_no_candidate_evaluated_twice(self, crowded):
        """Round-robin pulls may surface a tuple in two lists; the charge
        happens once."""
        data, query = crowded
        ctx, _ = run_thresholding(data, query, 8, 0)
        n_candidates = len(ctx.outcome.candidates)
        assert ctx.evals.evaluated_candidates <= n_candidates


class TestParallelCandidates:
    def test_candidates_at_dk_coordinate_never_constrain(self):
        """Tuples sharing d_k's j-coordinate are parallel lines — skipped."""
        data = Dataset.from_dense(
            [
                [0.9, 0.8],
                [0.8, 0.7],
                [0.5, 0.7],  # same dim-1 coordinate as d_k (id 1)
            ]
        )
        query = Query([0, 1], [0.5, 0.5])
        ctx = make_context(data, query, 2)
        if 2 not in ctx.outcome.candidates:
            ctx.outcome.candidates.insert(2, 0.5 * 0.5 + 0.5 * 0.7)
        view = ctx.view(1)
        assert view.dk_id == 1
        bounds = WorkingBounds(view)
        thresholding_phase2(ctx, view, bounds, ctx.candidate_records(1))
        # The parallel candidate must not have set either bound.
        assert bounds.lower.rising_id != 2
        assert bounds.upper.rising_id != 2
