"""Tests for the benchmark harness (runner, aggregation, tables, scaling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, InvertedIndex, sample_queries
from repro.bench import ExperimentRunner, bench_scale, format_series_table, query_count, write_figure
from repro.bench.harness import MethodAggregate
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def runner_setup():
    rng = np.random.default_rng(2)
    dense = rng.random((200, 6)) * (rng.random((200, 6)) < 0.5)
    data = Dataset.from_dense(dense)
    index = InvertedIndex(data)
    workload = sample_queries(data, qlen=3, n_queries=3, seed=1, min_column_nnz=10)
    return ExperimentRunner(index), workload


class TestExperimentRunner:
    def test_aggregate_fields(self, runner_setup):
        runner, workload = runner_setup
        aggregate = runner.run_point("scan", workload, k=5)
        assert aggregate.method == "scan"
        assert aggregate.n_queries == 3
        assert aggregate.evaluated_per_dim >= 0.0
        assert aggregate.io_seconds >= 0.0
        assert aggregate.cpu_seconds >= 0.0
        assert aggregate.memory_kbytes >= 0.0
        assert "ta" in aggregate.phase_seconds

    def test_method_ordering_preserved_in_aggregate(self, runner_setup):
        runner, workload = runner_setup
        scan = runner.run_point("scan", workload, k=5)
        cpt = runner.run_point("cpt", workload, k=5)
        assert cpt.evaluated_per_dim <= scan.evaluated_per_dim

    def test_unknown_method_rejected(self, runner_setup):
        runner, workload = runner_setup
        with pytest.raises(ValidationError):
            runner.run_point("magic", workload, k=5)

    def test_metric_lookup(self, runner_setup):
        runner, workload = runner_setup
        aggregate = runner.run_point("scan", workload, k=5)
        assert aggregate.metric("io_seconds") == aggregate.io_seconds

    def test_phi_and_iterative_forwarded(self, runner_setup):
        runner, workload = runner_setup
        one_off = runner.run_point("cpt", workload, k=5, phi=1, iterative=False)
        iterative = runner.run_point("cpt", workload, k=5, phi=1, iterative=True)
        assert one_off.n_queries == iterative.n_queries


class TestTables:
    @staticmethod
    def _fake_aggregate(method, value):
        return MethodAggregate(
            method=method,
            n_queries=1,
            evaluated_per_dim=value,
            io_seconds=value / 10,
            cpu_seconds=value / 100,
            memory_kbytes=value * 2,
            phase3_tuples=0.0,
            pruned_candidates=0.0,
            candidates_total=value * 3,
        )

    def test_format_series_table(self):
        grid = {
            ("scan", 2): self._fake_aggregate("scan", 100.0),
            ("cpt", 2): self._fake_aggregate("cpt", 1.0),
        }
        text = format_series_table(
            "T", "qlen", [2], ["scan", "cpt"], grid, "evaluated_per_dim"
        )
        assert "100" in text and "qlen" in text

    def test_missing_cell_rendered_as_dash(self):
        grid = {("scan", 2): self._fake_aggregate("scan", 1.0)}
        text = format_series_table(
            "T", "qlen", [2], ["scan", "cpt"], grid, "io_seconds"
        )
        assert "—" in text

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError):
            format_series_table("T", "x", [1], ["scan"], {}, "nope")

    def test_write_figure_creates_file(self, tmp_path):
        grid = {("scan", 2): self._fake_aggregate("scan", 5.0)}
        text = write_figure(
            tmp_path,
            "figX",
            "Title",
            "qlen",
            [2],
            ["scan"],
            grid,
            metrics=("evaluated_per_dim",),
            notes="a note",
        )
        assert (tmp_path / "figX.txt").read_text() == text
        assert "a note" in text


class TestScaling:
    def test_default_scale_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale().name == "small"

    def test_scale_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "medium")
        assert bench_scale().wsj_docs == 20_000

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValidationError):
            bench_scale()

    def test_query_count_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "17")
        assert query_count() == 17

    def test_query_count_rejects_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "0")
        with pytest.raises(ValidationError):
            query_count()

    def test_query_count_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_QUERIES", raising=False)
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert query_count() == bench_scale().default_queries
