"""Tests for the Figure 6 scatter-series extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro import InvertedIndex, Query, generate_correlated, generate_text_corpus, sample_queries
from repro.bench.figures import score_coordinate_series


@pytest.fixture(scope="module")
def wsj_setup():
    data, stats = generate_text_corpus(n_docs=2_000, vocab_size=600, seed=3)
    index = InvertedIndex(data)
    query = sample_queries(
        data, qlen=4, n_queries=1, seed=4, weight_scheme="idf", idf=stats.idf,
        min_column_nnz=30,
    )[0]
    return index, query


class TestScatterSeries:
    def test_result_points_count(self, wsj_setup):
        index, query = wsj_setup
        series = score_coordinate_series(index, query, 10, int(query.dims[0]))
        assert len(series.result) == 10

    def test_points_carry_true_scores(self, wsj_setup):
        index, query = wsj_setup
        dim = int(query.dims[0])
        series = score_coordinate_series(index, query, 10, dim)
        scores = index.dataset.scores(query.dims, query.weights)
        top = sorted(scores, reverse=True)[:10]
        assert sorted((s for _, s in series.result), reverse=True) == pytest.approx(top)

    def test_partition_coordinates(self, wsj_setup):
        index, query = wsj_setup
        dim = int(query.dims[0])
        series = score_coordinate_series(index, query, 10, dim)
        # C0 points sit on the y-axis; CH/CL points have positive coordinates.
        assert all(c == 0.0 for c, _ in series.candidates_c0)
        assert all(c > 0.0 for c, _ in series.candidates_ch)
        assert all(c > 0.0 for c, _ in series.candidates_cl)

    def test_ch_points_lie_on_score_line(self, wsj_setup):
        """CH tuples have score = q_j * coordinate (the Figure 6 'slope')."""
        index, query = wsj_setup
        dim = int(query.dims[0])
        weight = query.weight_of(dim)
        series = score_coordinate_series(index, query, 10, dim)
        for coord, score in series.candidates_ch:
            assert score == pytest.approx(weight * coord)

    def test_figure6_contrast_between_families(self):
        """Text data: mass on axes/slope; correlated data: interior mass."""
        text, stats = generate_text_corpus(n_docs=2_000, vocab_size=600, seed=5)
        text_index = InvertedIndex(text)
        text_query = sample_queries(
            text, qlen=4, n_queries=1, seed=6, weight_scheme="idf",
            idf=stats.idf, min_column_nnz=30,
        )[0]
        text_series = score_coordinate_series(
            text_index, text_query, 10, int(text_query.dims[0])
        )

        corr = generate_correlated(n_tuples=5_000, n_dims=8, seed=5)
        corr_index = InvertedIndex(corr)
        corr_query = sample_queries(corr, qlen=4, n_queries=1, seed=6)[0]
        corr_series = score_coordinate_series(
            corr_index, corr_query, 10, int(corr_query.dims[0])
        )

        text_axis_mass = len(text_series.candidates_c0) + len(text_series.candidates_ch)
        assert text_axis_mass > len(text_series.candidates_cl)
        assert len(corr_series.candidates_cl) > (
            len(corr_series.candidates_c0) + len(corr_series.candidates_ch)
        )
