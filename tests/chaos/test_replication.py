"""Replication chaos: killed replicas, corrupted sync streams.

The replicated-serving contract under test:

* with seeded replica crashes/stalls injected around dispatches, every
  answer a :class:`ReplicaSet` returns is **bit-identical** to what a
  fault-free single-node service computes at the answering epoch — or a
  structured error (:class:`ReplicationError` / deadline) — never a
  silently wrong result;
* acked writes survive failover: whichever replica ends up primary, the
  set reconverges to the fault-free oracle's state;
* a warming peer (:func:`warm_from_peer`) whose sync stream is
  corrupted in flight fails **closed** with :class:`RecoveryError` and
  leaves no recoverable-looking state behind.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro import Dataset, Mutation, Query, ShardedQueryService
from repro.errors import DeadlineExceeded, RecoveryError, ReplicationError
from repro.service import (
    AsyncGateway,
    DurabilityManager,
    FaultPlan,
    FaultSpec,
    REPLICATION_FAULT_KINDS,
    has_state,
)
from repro.service.replication import ReplicaSet, warm_from_peer
from repro.storage.durability import SYNC_SCOPE


def make_dataset(n=50, m=6, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


QUERIES = [
    Query([0, 2, 4], [0.7, 0.3, 0.5]),
    Query([1, 3], [0.9, 0.2]),
    Query([0, 1, 5], [0.4, 0.6, 0.8]),
]

BATCHES = [
    [Mutation.update(3, 1, 0.51)],
    [Mutation.update(9, 2, 0.27), Mutation.update(14, 0, 0.33)],
    [Mutation.update(21, 4, 0.68)],
]


def answer_key(computation):
    return (
        tuple(int(i) for i in computation.result.ids),
        tuple(float(s) for s in computation.result.scores),
        tuple(
            (dim,) + tuple(computation.immutable_interval(dim))
            for dim in computation.sequences
        ),
    )


def oracle_answers(seed, k=5):
    """Fault-free single-node answers for every query at every epoch."""
    service = ShardedQueryService(make_dataset(seed=seed), n_shards=2)
    answers = {}
    try:
        for epoch in range(len(BATCHES) + 1):
            if epoch > 0:
                service.apply_mutations(BATCHES[epoch - 1])
            assert service.index.epoch == epoch
            for qi, query in enumerate(QUERIES):
                computation = service.execute(query, k=k)
                answers[(qi, epoch)] = answer_key(computation)
        fingerprint = service.index.dataset.fingerprint()
    finally:
        service.close()
    return answers, fingerprint


class TestReplicaCrashChaos:
    @pytest.mark.parametrize("seed", [3, 11, 29, 47])
    def test_bit_identical_or_structured_error(self, seed):
        oracle, final_fingerprint = oracle_answers(seed)
        plan = FaultPlan.sample(
            seed=seed,
            n_shards=3,  # scopes address replica indices here
            n_faults=5,
            kinds=REPLICATION_FAULT_KINDS,
            max_at=6,
            stall_seconds=0.005,
        )
        with ReplicaSet.build(
            make_dataset(seed=seed),
            3,
            n_shards=2,
            set_kwargs={"fault_plan": plan, "failure_threshold": 10},
        ) as replicas:
            # Interleave reads and writes; every injected crash must
            # surface as re-dispatch, failover, or a structured error.
            for epoch, batch in enumerate(BATCHES, start=1):
                for qi, query in enumerate(QUERIES):
                    try:
                        computation, _ = replicas.execute_tiered(query, k=5)
                    except (ReplicationError, DeadlineExceeded):
                        continue  # structured, never silent
                    key = (qi, computation.epoch)
                    assert answer_key(computation) == oracle[key]
                try:
                    replicas.apply_mutations(batch)
                except ReplicationError:
                    pytest.fail(
                        "write lost despite healthy replicas remaining"
                    )
                assert replicas.primary.epoch == epoch
            # Post-chaos: acked writes reconverged everywhere (directly
            # or via ship-log catch-up), bit for bit.
            for replica in replicas.replicas:
                assert replica.epoch == len(BATCHES)
                assert (
                    replica.service.index.dataset.fingerprint()
                    == final_fingerprint
                )
            for qi, query in enumerate(QUERIES):
                computation, _ = replicas.execute_tiered(query, k=5)
                assert answer_key(computation) == oracle[(qi, len(BATCHES))]

    def test_crash_mid_slider_drag_replay(self):
        from repro.datasets.workloads import slider_drag
        from repro.loadgen import InProcessTarget, LoadStep, build_schedule, run_replay

        data = make_dataset(seed=5)
        workload = slider_drag(
            data, qlen=3, n_anchors=3, drags_per_anchor=4, seed=5
        )
        schedule = build_schedule(
            list(workload),
            [LoadStep(rate=120.0, duration=0.25, process="fixed")],
        )
        plan = FaultPlan(
            [FaultSpec("replica_crash", replica, at=at)
             for replica in range(2)
             for at in (0, 3)]
        )
        replicas = ReplicaSet.build(
            make_dataset(seed=5),
            2,
            n_shards=2,
            set_kwargs={"fault_plan": plan, "failure_threshold": 10},
        )
        try:
            target = InProcessTarget(replicas, k=5, max_workers=4)
            outcomes = run_replay(schedule, target)
        finally:
            replicas.close()
        # Every arrival resolves to a structured outcome — the injected
        # replica deaths become re-dispatches or typed errors, never
        # hangs or raises out of the replay.
        assert len(outcomes) == 30
        assert {o.outcome for o in outcomes} <= {"ok", "degraded", "error"}
        assert any(o.outcome == "ok" for o in outcomes)
        assert plan.counters.crashes == 4


class _GatewayThread:
    """A live gateway on an ephemeral port, driven from a daemon thread."""

    def __init__(self, service, **kwargs):
        self.gateway = AsyncGateway(service, **kwargs)
        self._ready = threading.Event()
        self._stop = threading.Event()
        self.port = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "gateway failed to start"

    def _run(self):
        async def main():
            _, self.port = await self.gateway.start("127.0.0.1", 0)
            self._ready.set()
            while not self._stop.is_set():
                await asyncio.sleep(0.02)
            await self.gateway.stop()

        asyncio.run(main())

    def close(self):
        self._stop.set()
        self._thread.join(timeout=10.0)


@pytest.fixture()
def durable_peer(tmp_path):
    """A durable service with a snapshot + WAL tail, served over TCP."""
    durability = DurabilityManager(tmp_path / "peer", snapshot_interval=0)
    service = ShardedQueryService(
        make_dataset(), n_shards=2, durability=durability
    )
    service.snapshot_now()
    service.apply_mutations(BATCHES[0])
    service.apply_mutations(BATCHES[1])
    server = _GatewayThread(service)
    yield server, service, tmp_path
    server.close()
    service.close()


class TestSyncStreamChaos:
    def test_clean_warmup_is_bit_identical(self, durable_peer):
        server, service, tmp_path = durable_peer
        report = warm_from_peer(
            "127.0.0.1", server.port, tmp_path / "warm", chunk_size=512
        )
        assert report["epoch"] == 0  # the snapshot's epoch; WAL adds 2
        warm = DurabilityManager(tmp_path / "warm")
        state = warm.recover()
        assert state.index.epoch == service.index.epoch == 2
        assert (
            state.index.dataset.fingerprint()
            == service.index.dataset.fingerprint()
        )
        warm.close()

    @pytest.mark.parametrize("kind", ["flip_byte", "torn_write"])
    @pytest.mark.parametrize("at", [0, 2, 5])
    def test_corrupted_stream_fails_closed(
        self, durable_peer, kind, at
    ):
        server, service, tmp_path = durable_peer
        server.gateway.fault_plan = FaultPlan(
            [FaultSpec(kind, SYNC_SCOPE, at=at, at_byte=13)]
        )
        with pytest.raises(RecoveryError):
            warm_from_peer(
                "127.0.0.1", server.port, tmp_path / "warm", chunk_size=512
            )
        # Fail closed: no half-synced state a later boot could trust.
        assert not has_state(tmp_path / "warm")
