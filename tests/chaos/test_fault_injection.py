"""Chaos property suite: deterministic fault plans against the serving stack.

The contract under every injected failure is *bit-identical answers or a
structured error* — never a silent wrong answer, never a hang:

* seeded :class:`~repro.service.FaultPlan` schedules (worker crashes,
  slow shards) replayed against the supervised sharded service must
  produce answers identical to the fault-free oracle (``"oracle"``
  failover policy) or an explicit ``DEGRADED`` reply (``"degraded"``);
* a deadline-bearing request against a stalled shard must return a
  structured ``DEADLINE_EXCEEDED`` within budget plus a small epsilon;
* connection faults (dropped/torn responses) must kill at most that one
  connection — the server keeps answering on the next one;
* the same plan against the same request sequence injects the same
  faults (the counters are part of the assertion).
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, ImmutableRegionEngine, InvertedIndex, Query
from repro.core.supervision import SupervisionPolicy
from repro.errors import DegradedError
from repro.service import AsyncGateway, FaultPlan, FaultSpec, ShardedQueryService

N_SHARDS = 3


def make_dataset(n=60, m=6, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


QUERIES = [
    Query([0, 2, 4], [0.7, 0.3, 0.5]),
    Query([1, 3], [0.9, 0.2]),
    Query([0, 1, 5], [0.4, 0.6, 0.8]),
]

FAST_POLICY = SupervisionPolicy(
    max_retries=1, backoff_base=0.0, failure_threshold=100
)


def make_service(plan=None, policy=FAST_POLICY, **kwargs):
    kwargs.setdefault("on_shard_failure", "oracle")
    kwargs.setdefault("reuse", "off")  # every request must touch the shards
    return ShardedQueryService(
        make_dataset(),
        n_shards=N_SHARDS,
        supervision=policy,
        fault_plan=plan,
        **kwargs,
    )


@pytest.fixture(scope="module")
def oracle_answers():
    engine = ImmutableRegionEngine(InvertedIndex(make_dataset()))
    computations = engine.compute_many(QUERIES, 5, topk_mode="matmul")
    return [
        (
            c.result.ids,
            {d: c.immutable_interval(d) for d in c.sequences},
        )
        for c in computations
    ]


def answers_of(service, k=5):
    out = []
    for query in QUERIES:
        c = service.execute(query, k)
        out.append(
            (c.result.ids, {d: c.immutable_interval(d) for d in c.sequences})
        )
    return out


class TestChaosProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_crashes_and_stalls_never_change_answers(self, seed, oracle_answers):
        """Seeded transport faults + oracle failover = bit-identical output."""
        plan = FaultPlan.sample(
            seed, N_SHARDS, n_faults=3, stall_seconds=0.005
        )
        service = make_service(plan)
        try:
            assert answers_of(service) == oracle_answers
        finally:
            service.close()

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_same_plan_injects_the_same_faults(self, seed):
        """Determinism: same plan + same request sequence → same failures."""
        counters = []
        for _ in range(2):
            plan = FaultPlan.sample(
                seed, N_SHARDS, n_faults=3, stall_seconds=0.001
            )
            service = make_service(plan)
            try:
                answers_of(service)
            finally:
                service.close()
            counters.append(plan.counters.as_dict())
        assert counters[0] == counters[1]


class TestFailurePolicies:
    def test_oracle_failover_counts_and_recovers(self):
        plan = FaultPlan([FaultSpec("crash", 0, 0)])
        service = make_service(
            plan, policy=SupervisionPolicy(max_retries=0, backoff_base=0.0)
        )
        try:
            service.execute(QUERIES[0], 5)
            snapshot = service.supervision_snapshot()
            assert snapshot["oracle_failovers"] == 1
            assert snapshot["respawns"] == 1
            assert plan.exhausted
            # The respawned worker serves the next query shard-side.
            service.execute(QUERIES[1], 5)
            assert service.supervision_snapshot()["oracle_failovers"] == 1
        finally:
            service.close()

    def test_degraded_policy_names_the_failed_shards(self):
        plan = FaultPlan([FaultSpec("crash", 1, 0)])
        service = make_service(
            plan,
            policy=SupervisionPolicy(max_retries=0, backoff_base=0.0),
            on_shard_failure="degraded",
        )
        try:
            with pytest.raises(DegradedError) as excinfo:
                service.execute(QUERIES[0], 5)
            assert excinfo.value.failed_shards == (1,)
            assert 1 not in excinfo.value.shards_consulted
        finally:
            service.close()

    def test_breaker_opens_under_persistent_failure(self):
        plan = FaultPlan(
            [FaultSpec("crash", 0, at) for at in range(6)]
        )
        service = make_service(
            plan,
            policy=SupervisionPolicy(
                max_retries=0,
                backoff_base=0.0,
                failure_threshold=2,
                reset_after=60.0,
            ),
        )
        try:
            for query in QUERIES:
                service.execute(query, 5)  # oracle keeps answers exact
            snapshot = service.supervision_snapshot()
            assert snapshot["breaker_states"][0] == "open"
            assert snapshot["breaker_transitions"] >= 1
            assert snapshot["oracle_failovers"] == len(QUERIES)
        finally:
            service.close()


class TestDeadlineUnderFaults:
    def test_stalled_shard_returns_within_budget(self):
        """The acceptance criterion: a 100 ms deadline against a 600 ms
        stall comes back structured in ~budget, nowhere near the stall."""
        plan = FaultPlan([FaultSpec("slow", 0, 0, seconds=0.6)])
        service = make_service(plan)
        gateway = AsyncGateway(service, k=5)
        try:
            start = time.perf_counter()
            reply = asyncio.run(
                gateway.handle(
                    {
                        "op": "query",
                        "dims": [0, 2, 4],
                        "weights": [0.7, 0.3, 0.5],
                        "deadline_ms": 100,
                    }
                )
            )
            elapsed = time.perf_counter() - start
            assert reply["code"] == "DEADLINE_EXCEEDED"
            assert reply["budget_ms"] == pytest.approx(100.0)
            assert elapsed < 0.45  # budget + epsilon, not the 0.6 s stall
            assert gateway.stats.deadline_hits == 1
        finally:
            service.close()

    def test_generous_deadline_absorbs_the_stall(self):
        plan = FaultPlan([FaultSpec("slow", 0, 0, seconds=0.02)])
        service = make_service(plan)
        gateway = AsyncGateway(service, k=5)
        try:
            reply = asyncio.run(
                gateway.handle(
                    {
                        "op": "query",
                        "dims": [0, 2, 4],
                        "weights": [0.7, 0.3, 0.5],
                        "deadline_ms": 10_000,
                    }
                )
            )
            assert reply["ok"] and reply["tier"] == "computed"
        finally:
            service.close()


async def _one_connection(host, port, payload):
    """Send one request, return (line, eof_before_newline)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        try:
            line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return b"", True
        return line, not line.endswith(b"\n")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionResetError:
            pass


class TestConnectionFaults:
    def test_gateway_survives_dropped_and_torn_responses(self):
        """Connection faults kill one connection, never the server."""
        plan = FaultPlan(
            [FaultSpec("drop", 0, 0), FaultSpec("torn", 1, 0)]
        )
        service = make_service()
        gateway = AsyncGateway(service, k=5, fault_plan=plan)

        async def _run():
            host, port = await gateway.start("127.0.0.1", 0)
            try:
                # Connection 0: response dropped before the write.
                line, truncated = await _one_connection(host, port, {"op": "ping"})
                assert line == b"" or truncated
                # Connection 1: half a response line, then close.
                line, truncated = await _one_connection(host, port, {"op": "ping"})
                assert truncated
                with pytest.raises(json.JSONDecodeError):
                    json.loads(line or b"{")
                # Connection 2: the server is still perfectly healthy.
                line, truncated = await _one_connection(host, port, {"op": "ping"})
                assert not truncated and json.loads(line)["ok"]
            finally:
                await gateway.stop()

        try:
            asyncio.run(_run())
            assert plan.counters.drops == 1
            assert plan.counters.torn_writes == 1
        finally:
            service.close()
