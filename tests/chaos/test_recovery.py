"""Crash-recovery chaos suite: recovery must be bit-identical or refuse.

The durability contract under test:

* after any mutation schedule and a crash at any point, recovery
  (newest checksum-valid snapshot + WAL replay through the live apply
  path) rebuilds storage arrays, the global epoch, per-shard epochs,
  and query answers **bit-identical** to the acknowledged pre-crash
  state — across shard counts and snapshot cadences;
* WAL replay respects the sharded mutation routing: every replayed
  mutation lands on the same shard at the same local coordinates, so
  the per-shard datasets match the live ones byte for byte;
* every injected storage corruption (torn write, flipped byte, missing
  artifact, crash between fsync and rename) yields recovery from the
  last good generation or a structured :class:`RecoveryError` — never
  a silently wrong answer.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, Query
from repro.errors import RecoveryError, SimulatedCrash
from repro.service import (
    AsyncGateway,
    DurabilityManager,
    FaultPlan,
    FaultSpec,
    QueryService,
    ShardedQueryService,
    has_state,
)
from repro.storage.durability import SNAPSHOT_SCOPE, WAL_SCOPE
from repro.storage.index import InvertedIndex
from repro.storage.mutations import Mutation, MutationBatch

N, M = 50, 6

QUERIES = [
    Query([0, 2, 4], [0.7, 0.3, 0.5]),
    Query([1, 3], [0.9, 0.2]),
    Query([0, 1, 5], [0.4, 0.6, 0.8]),
]


def make_dataset(seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((N, M)) * (rng.random((N, M)) < 0.8))


def random_batch(rng, dataset):
    """One random mutation batch targeting only live (undeleted) rows."""
    live = sorted(set(range(dataset.n_tuples)) - set(dataset.deleted_ids))
    mutations = []
    for _ in range(int(rng.integers(1, 4))):
        roll = rng.random()
        if roll < 0.6 and live:
            mutations.append(
                Mutation.update(
                    int(live[rng.integers(0, len(live))]),
                    int(rng.integers(0, M)),
                    float(rng.random()),
                )
            )
        elif roll < 0.8 or not live:
            dims = rng.choice(M, size=2, replace=False)
            mutations.append(
                Mutation.insert(
                    [int(d) for d in dims], [float(v) for v in rng.random(2)]
                )
            )
        else:
            victim = live.pop(int(rng.integers(0, len(live))))
            mutations.append(Mutation.delete(int(victim)))
    return MutationBatch(tuple(mutations))


def snapshot_state(service):
    """Everything recovery must reproduce, captured from the live service."""
    sharded = getattr(service, "sharded", None)
    return {
        "arrays": [a.copy() for a in service.index.dataset.csr_arrays],
        "epoch": service.index.epoch,
        "shard_epochs": (
            sharded.shard_epochs if sharded is not None else None
        ),
        "shard_arrays": (
            [
                [a.copy() for a in shard.dataset.csr_arrays]
                for shard in sharded.shards
            ]
            if sharded is not None
            else None
        ),
        "answers": [
            (list(c.result.ids), list(c.result.scores))
            for c in (service.execute(q, k=5) for q in QUERIES)
        ],
    }


def assert_recovered_matches(state, live):
    """Bit-identity between a recovered service's state and the oracle."""
    for a, b in zip(live["arrays"], state.index.dataset.csr_arrays):
        np.testing.assert_array_equal(a, b)
    assert state.index.epoch == live["epoch"]
    if live["shard_epochs"] is not None:
        assert state.is_sharded
        assert tuple(s.epoch for s in state.index.shards) == live[
            "shard_epochs"
        ]
        # Satellite contract: replay routed every mutation to the same
        # shard at the same local coordinates.
        for shard, expected in zip(state.index.shards, live["shard_arrays"]):
            for a, b in zip(expected, shard.dataset.csr_arrays):
                np.testing.assert_array_equal(a, b)


def assert_answers_match(service, live):
    for query, (ids, scores) in zip(QUERIES, live["answers"]):
        computation = service.execute(query, k=5)
        assert list(computation.result.ids) == ids
        assert list(computation.result.scores) == scores


# ----------------------------------------------------------------------
# The central property: crash -> recover -> bit-identical
# ----------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    n_shards=st.integers(min_value=1, max_value=4),
    n_batches=st.integers(min_value=0, max_value=8),
    snapshot_interval=st.sampled_from([0, 1, 3]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_recovery_bit_identical(
    tmp_path_factory, n_shards, n_batches, snapshot_interval, seed
):
    data_dir = tmp_path_factory.mktemp("chaos")
    rng = np.random.default_rng(seed)
    manager = DurabilityManager(data_dir, snapshot_interval=snapshot_interval)
    service = ShardedQueryService(
        make_dataset(seed), n_shards=n_shards, reuse="off", durability=manager
    )
    service.snapshot_now()
    for _ in range(n_batches):
        service.apply_mutations(
            random_batch(rng, service.index.dataset)
        )
    live = snapshot_state(service)
    service.close()  # crash: no final snapshot, WAL tail outruns snapshots

    manager2 = DurabilityManager(data_dir)
    state = manager2.recover()
    assert_recovered_matches(state, live)
    recovered = ShardedQueryService(state.index, reuse="off", durability=manager2)
    assert_answers_match(recovered, live)
    recovered.close()


def test_unsharded_service_recovers(tmp_path):
    rng = np.random.default_rng(7)
    manager = DurabilityManager(tmp_path, snapshot_interval=2)
    service = QueryService(
        InvertedIndex(make_dataset(7)),
        executor="sequential",
        reuse="off",
        durability=manager,
    )
    service.snapshot_now()
    for _ in range(5):
        service.apply_mutations(
            random_batch(rng, service.index.dataset)
        )
    live = snapshot_state(service)
    service.close()

    manager2 = DurabilityManager(tmp_path)
    state = manager2.recover()
    assert not state.is_sharded  # no shard fence in the manifest
    assert_recovered_matches(state, live)
    recovered = QueryService(
        state.index, executor="sequential", reuse="off", durability=manager2
    )
    assert_answers_match(recovered, live)
    recovered.close()


def test_clean_shutdown_needs_no_replay(tmp_path):
    rng = np.random.default_rng(3)
    manager = DurabilityManager(tmp_path)
    service = ShardedQueryService(
        make_dataset(3), n_shards=2, reuse="off", durability=manager
    )
    for _ in range(3):
        service.apply_mutations(
            random_batch(rng, service.index.dataset)
        )
    service.snapshot_now()  # the graceful-drain final flush
    live = snapshot_state(service)
    service.close()

    manager2 = DurabilityManager(tmp_path)
    state = manager2.recover()
    assert state.report.wal_records_replayed == 0
    assert_recovered_matches(state, live)


# ----------------------------------------------------------------------
# Injected storage corruption: last good generation or structured error
# ----------------------------------------------------------------------


def build_durable_stack(data_dir, fault_plan=None, seed=11, interval=0):
    rng = np.random.default_rng(seed)
    manager = DurabilityManager(
        data_dir, snapshot_interval=interval, fault_plan=fault_plan
    )
    service = ShardedQueryService(
        make_dataset(seed), n_shards=3, reuse="off", durability=manager
    )
    return rng, manager, service


def test_crash_mid_snapshot_falls_back_to_previous_generation(tmp_path):
    # Generation 1 and three logged batches land cleanly; the *second*
    # snapshot crashes before its rename.  Recovery must fall back to
    # generation 1 and replay the full WAL span - exact pre-crash state.
    plan = FaultPlan(
        [FaultSpec(kind="crash_rename", shard=SNAPSHOT_SCOPE, at=5)]
    )
    rng, manager, service = build_durable_stack(tmp_path, plan)
    service.snapshot_now()  # gen 1: artifact draw 0, manifest 1, publish 2
    for _ in range(3):
        service.apply_mutations(
            random_batch(rng, service.index.dataset)
        )
    live = snapshot_state(service)
    with pytest.raises(SimulatedCrash):
        service.snapshot_now()  # draws 3, 4, then crash at 5
    service.close()

    manager2 = DurabilityManager(tmp_path)
    state = manager2.recover()
    assert state.report.chosen_generation == 1
    assert state.report.wal_records_replayed == 3
    assert_recovered_matches(state, live)


def test_flipped_snapshot_byte_rejected_with_fallback(tmp_path):
    # The second generation's artifact is corrupted on disk after it
    # lands; recovery must reject it (checksum) and use generation 1
    # plus the WAL - which retention kept replayable.
    rng, manager, service = build_durable_stack(tmp_path)
    service.snapshot_now()  # gen 1 at epoch 0
    for _ in range(4):
        service.apply_mutations(
            random_batch(rng, service.index.dataset)
        )
    service.snapshot_now()  # gen 2 at epoch 4
    for _ in range(2):
        service.apply_mutations(
            random_batch(rng, service.index.dataset)
        )
    live = snapshot_state(service)
    service.close()

    gen2 = tmp_path / "snapshots" / "gen-00000002"
    blob = bytearray((gen2 / "dataset.npz").read_bytes())
    blob[50] ^= 0xFF
    (gen2 / "dataset.npz").write_bytes(bytes(blob))

    manager2 = DurabilityManager(tmp_path)
    state = manager2.recover()
    assert state.report.chosen_generation == 1
    assert [g for g, _ in state.report.rejected] == [2]
    assert state.report.wal_records_replayed == 6  # full span from epoch 0
    assert_recovered_matches(state, live)


def test_missing_artifact_rejected_with_fallback(tmp_path):
    rng, manager, service = build_durable_stack(tmp_path)
    service.snapshot_now()
    for _ in range(3):
        service.apply_mutations(
            random_batch(rng, service.index.dataset)
        )
    service.snapshot_now()
    live = snapshot_state(service)
    service.close()

    os.unlink(tmp_path / "snapshots" / "gen-00000002" / "dataset.npz")
    state = DurabilityManager(tmp_path).recover()
    assert state.report.chosen_generation == 1
    assert_recovered_matches(state, live)


def test_torn_wal_append_recovers_acknowledged_prefix(tmp_path):
    # The third WAL append tears mid-record (simulated crash).  That
    # batch was never acknowledged OR applied - log-before-apply - so
    # the pre-crash live state is the two-batch state, and recovery
    # must land exactly there (repairing the torn tail, reporting it).
    plan = FaultPlan([FaultSpec(kind="torn_write", shard=WAL_SCOPE, at=2)])
    rng, manager, service = build_durable_stack(tmp_path, plan)
    service.snapshot_now()
    for _ in range(2):
        service.apply_mutations(
            random_batch(rng, service.index.dataset)
        )
    live = snapshot_state(service)
    with pytest.raises(SimulatedCrash):
        service.apply_mutations(
            random_batch(rng, service.index.dataset)
        )
    assert service.index.epoch == live["epoch"]  # batch was not applied
    service.close()

    manager2 = DurabilityManager(tmp_path)
    assert manager2.wal.truncated_bytes > 0  # the repair is reported
    state = manager2.recover()
    assert state.report.wal_records_replayed == 2
    assert state.report.wal_truncated_bytes > 0
    assert_recovered_matches(state, live)


def test_all_generations_corrupt_is_structured_error(tmp_path):
    rng, manager, service = build_durable_stack(tmp_path)
    service.snapshot_now()
    service.apply_mutations(random_batch(rng, service.index.dataset))
    service.snapshot_now()
    service.close()

    for gen_dir in (tmp_path / "snapshots").iterdir():
        blob = bytearray((gen_dir / "dataset.npz").read_bytes())
        blob[60] ^= 0xFF
        (gen_dir / "dataset.npz").write_bytes(bytes(blob))

    manager2 = DurabilityManager(tmp_path)
    with pytest.raises(RecoveryError, match="no recoverable snapshot"):
        manager2.recover()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_seeded_storage_fault_plans_never_silently_wrong(
    tmp_path_factory, seed
):
    """Random storage-fault schedules: every outcome is either a normal
    acknowledgement, a SimulatedCrash, or a structured RecoveryError —
    and the recovered state is always bit-identical to the acknowledged
    state *at the recovered epoch*.  (A flipped byte in the WAL tail
    may legitimately lose acknowledged records — but the loss shows up
    in ``checksum_rejections`` and recovery lands on an earlier exact
    state, never a divergent one.)
    """
    data_dir = tmp_path_factory.mktemp("storm")
    plan = FaultPlan.sample(
        seed,
        n_shards=3,  # scopes 0..2 = WAL / snapshots / atlas
        n_faults=3,
        kinds=("torn_write", "flip_byte", "crash_rename"),
        max_at=6,
    )
    rng, manager, service = build_durable_stack(
        data_dir, plan, seed=seed, interval=2
    )
    # Oracle: the acknowledged arrays at every epoch the service passed
    # through (index.apply may run even when a later periodic-snapshot
    # fault aborts the same call, so record by observed epoch).
    history = {
        service.index.epoch: [
            a.copy() for a in service.index.dataset.csr_arrays
        ]
    }
    try:
        service.snapshot_now()
        for _ in range(6):
            batch = random_batch(rng, service.index.dataset)
            try:
                service.apply_mutations(batch)
            finally:
                history[service.index.epoch] = [
                    a.copy() for a in service.index.dataset.csr_arrays
                ]
    except SimulatedCrash:
        pass
    live_epoch = service.index.epoch
    service.close()

    manager2 = DurabilityManager(data_dir)
    try:
        state = manager2.recover()
    except RecoveryError:
        # Fail-closed is an acceptable outcome for e.g. a flipped byte
        # in every surviving generation; silent divergence is not.
        return
    assert state.index.epoch <= live_epoch
    assert state.index.epoch in history
    if state.index.epoch < live_epoch:
        # Some acknowledged tail was unrecoverable: the WAL scan must
        # have reported why (torn tail or CRC rejection), not skipped it.
        wal = manager2.wal
        assert wal.truncated_bytes > 0 or wal.counters.checksum_rejections > 0
    for a, b in zip(
        history[state.index.epoch], state.index.dataset.csr_arrays
    ):
        np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# Stats surfacing (satellite: counters visible at the gateway)
# ----------------------------------------------------------------------


def test_durability_counters_reach_gateway_stats(tmp_path):
    rng, manager, service = build_durable_stack(tmp_path, interval=1)
    service.snapshot_now()
    service.apply_mutations(random_batch(rng, service.index.dataset))
    gateway = AsyncGateway(service)
    snapshot = gateway.stats_snapshot()
    assert snapshot["durability"]["snapshots_written"] == 2
    assert snapshot["durability"]["wal_records"] == 1
    assert snapshot["durability"]["atlas_dumps"] == 2
    rendered = gateway.stats.render()
    assert "durability:" in rendered
    service.close()

    manager2 = DurabilityManager(tmp_path)
    state = manager2.recover()
    service2 = ShardedQueryService(
        state.index, reuse="off", durability=manager2
    )
    snapshot2 = AsyncGateway(service2).stats_snapshot()
    assert snapshot2["durability"]["recovery_seconds"] > 0
    service2.close()


def test_has_state_ignores_empty_wal(tmp_path):
    assert not has_state(tmp_path)
    manager = DurabilityManager(tmp_path)  # creates a magic-only WAL
    assert not has_state(tmp_path)
    service = ShardedQueryService(
        make_dataset(), n_shards=2, reuse="off", durability=manager
    )
    service.apply_mutations(
        MutationBatch((Mutation.update(0, 0, 0.5),))
    )
    assert has_state(tmp_path)  # one logged record counts
    service.close()
