"""Unit tests for the simulated disk cost model."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.metrics import AccessCounters, DiskModel


class TestDiskModelValidation:
    def test_rejects_negative_random_cost(self):
        with pytest.raises(ValidationError):
            DiskModel(random_access_ms=-1.0)

    def test_rejects_negative_page_cost(self):
        with pytest.raises(ValidationError):
            DiskModel(page_read_ms=-0.1)

    def test_rejects_zero_page_size(self):
        with pytest.raises(ValidationError):
            DiskModel(entries_per_page=0)


class TestPageReads:
    def test_zero_accesses(self):
        assert DiskModel(entries_per_page=256).page_reads(0) == 0

    def test_exact_page(self):
        assert DiskModel(entries_per_page=256).page_reads(256) == 1

    def test_partial_page_rounds_up(self):
        assert DiskModel(entries_per_page=256).page_reads(257) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            DiskModel().page_reads(-1)


class TestIOSeconds:
    def test_random_only(self):
        model = DiskModel(random_access_ms=5.0, page_read_ms=0.0)
        assert model.io_seconds(AccessCounters(0, 100)) == pytest.approx(0.5)

    def test_sequential_only(self):
        model = DiskModel(random_access_ms=0.0, page_read_ms=0.1, entries_per_page=100)
        assert model.io_seconds(AccessCounters(1000, 0)) == pytest.approx(0.001)

    def test_mixed(self):
        model = DiskModel(random_access_ms=5.0, page_read_ms=0.1, entries_per_page=256)
        counters = AccessCounters(sorted_accesses=512, random_accesses=10)
        # 10 * 5ms + 2 pages * 0.1ms = 50.2 ms
        assert model.io_milliseconds(counters) == pytest.approx(50.2)

    def test_random_access_dominates_default_model(self):
        """A random access must be far costlier than an amortised sorted one."""
        model = DiskModel()
        random_cost = model.io_seconds(AccessCounters(0, 1))
        sorted_cost = model.io_seconds(AccessCounters(1, 0))
        assert random_cost > 10 * sorted_cost
