"""Unit tests for access/evaluation counters."""

from __future__ import annotations

from repro.metrics import AccessCounters, EvaluationCounters


class TestAccessCounters:
    def test_starts_at_zero(self):
        counters = AccessCounters()
        assert counters.sorted_accesses == 0
        assert counters.random_accesses == 0

    def test_record_defaults_to_one(self):
        counters = AccessCounters()
        counters.record_sorted()
        counters.record_random()
        assert (counters.sorted_accesses, counters.random_accesses) == (1, 1)

    def test_record_count(self):
        counters = AccessCounters()
        counters.record_sorted(5)
        counters.record_random(3)
        assert (counters.sorted_accesses, counters.random_accesses) == (5, 3)

    def test_reset(self):
        counters = AccessCounters(4, 2)
        counters.reset()
        assert (counters.sorted_accesses, counters.random_accesses) == (0, 0)

    def test_snapshot_is_independent(self):
        counters = AccessCounters(1, 1)
        snap = counters.snapshot()
        counters.record_sorted()
        assert snap.sorted_accesses == 1
        assert counters.sorted_accesses == 2

    def test_delta_from(self):
        counters = AccessCounters(10, 5)
        snap = counters.snapshot()
        counters.record_sorted(3)
        counters.record_random(2)
        delta = counters.delta_from(snap)
        assert (delta.sorted_accesses, delta.random_accesses) == (3, 2)

    def test_merged_with(self):
        merged = AccessCounters(1, 2).merged_with(AccessCounters(3, 4))
        assert (merged.sorted_accesses, merged.random_accesses) == (4, 6)


class TestEvaluationCounters:
    def test_all_fields_start_zero(self):
        evals = EvaluationCounters()
        assert evals.evaluated_candidates == 0
        assert evals.result_comparisons == 0
        assert evals.termination_checks == 0
        assert evals.pruned_candidates == 0
        assert evals.phase3_tuples == 0

    def test_snapshot_and_delta(self):
        evals = EvaluationCounters()
        evals.evaluated_candidates = 7
        snap = evals.snapshot()
        evals.evaluated_candidates += 5
        evals.phase3_tuples += 2
        delta = evals.delta_from(snap)
        assert delta.evaluated_candidates == 5
        assert delta.phase3_tuples == 2
        assert delta.result_comparisons == 0

    def test_reset(self):
        evals = EvaluationCounters()
        evals.pruned_candidates = 9
        evals.reset()
        assert evals.pruned_candidates == 0
