"""Unit tests for the phase timer."""

from __future__ import annotations

import time

import pytest

from repro.errors import ValidationError
from repro.metrics import PhaseTimer


class TestPhaseTimer:
    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().seconds("phase2") == 0.0

    def test_accumulates_time(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            time.sleep(0.002)
        assert timer.seconds("work") >= 0.001

    def test_reentry_accumulates(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("work"):
                pass
        timer.add("work", 1.0)
        assert timer.seconds("work") >= 1.0

    def test_total_sums_phases(self):
        timer = PhaseTimer()
        timer.add("a", 1.0)
        timer.add("b", 2.0)
        assert timer.total_seconds() == pytest.approx(3.0)

    def test_as_dict_is_copy(self):
        timer = PhaseTimer()
        timer.add("a", 1.0)
        snapshot = timer.as_dict()
        snapshot["a"] = 99.0
        assert timer.seconds("a") == pytest.approx(1.0)

    def test_merge(self):
        first = PhaseTimer()
        first.add("a", 1.0)
        second = PhaseTimer()
        second.add("a", 2.0)
        second.add("b", 3.0)
        first.merge(second)
        assert first.seconds("a") == pytest.approx(3.0)
        assert first.seconds("b") == pytest.approx(3.0)

    def test_reset(self):
        timer = PhaseTimer()
        timer.add("a", 1.0)
        timer.reset()
        assert timer.total_seconds() == 0.0

    def test_empty_name_rejected(self):
        timer = PhaseTimer()
        with pytest.raises(ValidationError):
            with timer.phase(""):
                pass

    def test_negative_add_rejected(self):
        with pytest.raises(ValidationError):
            PhaseTimer().add("a", -1.0)

    def test_exception_still_records(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("work"):
                raise RuntimeError("boom")
        assert timer.seconds("work") >= 0.0
        assert "work" in timer.as_dict()
