"""Unit tests for the analytic memory-footprint model (Figure 10(d))."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.metrics import FootprintModel


@pytest.fixture()
def model() -> FootprintModel:
    return FootprintModel()


class TestScanFootprint:
    def test_scales_with_candidates(self, model):
        assert model.scan(100).total_bytes == 100 * 16

    def test_no_sort_lists(self, model):
        assert model.scan(100).sort_list_bytes == 0

    def test_rejects_negative(self, model):
        with pytest.raises(ValidationError):
            model.scan(-1)


class TestThresFootprint:
    def test_adds_sort_lists(self, model):
        fp = model.thres(100, qlen=4)
        assert fp.candidate_bytes == 100 * 16
        # SLS plus one SLj per dimension: (1 + 4) * 100 entries.
        assert fp.sort_list_bytes == 5 * 100 * 8

    def test_larger_than_scan(self, model):
        assert model.thres(50, 2).total_bytes > model.scan(50).total_bytes


class TestPruneFootprint:
    def test_retains_two_per_dim_phi0(self, model):
        fp = model.prune(n_cl=0, qlen=4, phi=0)
        assert fp.candidate_bytes == 2 * 4 * 16

    def test_phi_scales_retained(self, model):
        phi0 = model.prune(0, 4, phi=0).total_bytes
        phi9 = model.prune(0, 4, phi=9).total_bytes
        assert phi9 == 10 * phi0

    def test_cl_dominates_when_correlated(self, model):
        """On correlated data CL is large, so Prune saves almost nothing."""
        scan = model.scan(1000).total_bytes
        prune = model.prune(n_cl=1000, qlen=4, phi=0).total_bytes
        assert prune >= scan


class TestCPTFootprint:
    def test_between_prune_and_thres_on_sparse_data(self, model):
        """When pruning works (tiny CL), CPT sits far below Thres."""
        cpt = model.cpt(n_cl=5, qlen=4, phi=0).total_bytes
        thres = model.thres(1000, qlen=4).total_bytes
        assert cpt < thres / 10

    def test_kbyte_conversion(self, model):
        fp = model.scan(64)  # 64 * 16 bytes = 1 KiB
        assert fp.total_kbytes == pytest.approx(1.0)


class TestModelValidation:
    def test_rejects_zero_entry_sizes(self):
        with pytest.raises(ValidationError):
            FootprintModel(score_bytes=0)
        with pytest.raises(ValidationError):
            FootprintModel(pointer_bytes=0)
        with pytest.raises(ValidationError):
            FootprintModel(sort_entry_bytes=0)
