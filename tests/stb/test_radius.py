"""Tests for the STB sensitivity radius and its relation to immutable regions."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Query, brute_force_topk, compute_immutable_regions, stb_radius


@pytest.fixture()
def data_and_query():
    rng = np.random.default_rng(21)
    dense = rng.random((60, 4)) * (rng.random((60, 4)) < 0.8)
    return Dataset.from_dense(dense), Query([0, 1, 2], [0.5, 0.6, 0.4])


class TestRadiusBasics:
    def test_radius_positive(self, data_and_query):
        data, query = data_and_query
        result = stb_radius(data, query, k=5)
        assert result.radius > 0.0

    def test_examined_counts_all_non_result(self, data_and_query):
        data, query = data_and_query
        result = stb_radius(data, query, k=5)
        matching = int(np.count_nonzero(data.scores(query.dims, query.weights) > 0))
        assert result.examined == data.n_tuples - min(5, matching)

    def test_limiting_pair_reported(self, data_and_query):
        data, query = data_and_query
        result = stb_radius(data, query, k=5)
        assert result.limiting_ahead is not None
        assert result.limiting_behind is not None
        assert result.limiting_ahead != result.limiting_behind

    def test_composition_only_radius_at_least_strict(self, data_and_query):
        data, query = data_and_query
        strict = stb_radius(data, query, k=5, count_reorderings=True)
        loose = stb_radius(data, query, k=5, count_reorderings=False)
        assert loose.radius >= strict.radius


class TestBallPreservesResult:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_points_inside_ball_preserve_topk(self, seed):
        rng = np.random.default_rng(seed)
        dense = rng.random((50, 3)) * (rng.random((50, 3)) < 0.9)
        data = Dataset.from_dense(dense)
        query = Query([0, 1, 2], [0.5, 0.5, 0.5])
        k = 4
        base = brute_force_topk(data, query, k)
        rho = stb_radius(data, query, k).radius
        for _ in range(10):
            direction = rng.standard_normal(3)
            direction /= np.linalg.norm(direction)
            step = 0.9 * rho * direction
            new_weights = query.weights + step
            if np.any(new_weights <= 0.0) or np.any(new_weights > 1.0):
                continue
            moved = Query(query.dims, new_weights)
            assert brute_force_topk(data, moved, k).ids == base.ids


class TestRelationToImmutableRegions:
    @pytest.mark.parametrize("seed", range(5))
    def test_regions_at_least_as_wide_as_radius_along_axes(self, seed):
        """The ρ-ball's axis segment lies inside each immutable region.

        This is the geometric containment the paper's footnote 1 relies on:
        per-axis regions extend at least ρ (clipped to the weight domain).
        """
        rng = np.random.default_rng(100 + seed)
        dense = rng.random((40, 3)) * (rng.random((40, 3)) < 0.9)
        data = Dataset.from_dense(dense)
        query = Query([0, 1, 2], [0.5, 0.6, 0.4])
        k = 3
        rho = stb_radius(data, query, k).radius
        computation = compute_immutable_regions(data, query, k, method="cpt")
        for dim in (0, 1, 2):
            region = computation.region(dim)
            weight = query.weight_of(dim)
            upper_reach = min(rho, 1.0 - weight)
            lower_reach = min(rho, weight)
            assert region.upper.delta >= upper_reach - 1e-9
            assert region.lower.delta <= -lower_reach + 1e-9

    def test_region_can_exceed_radius(self):
        """STB's single radius is pessimistic per-axis: find a case where an
        immutable region extends strictly beyond ρ."""
        rng = np.random.default_rng(7)
        found = False
        for _ in range(20):
            dense = rng.random((40, 3)) * (rng.random((40, 3)) < 0.9)
            data = Dataset.from_dense(dense)
            query = Query([0, 1, 2], [0.5, 0.6, 0.4])
            rho = stb_radius(data, query, 3).radius
            computation = compute_immutable_regions(data, query, 3, method="cpt")
            for dim in (0, 1, 2):
                if computation.region(dim).upper.delta > rho * 1.5:
                    found = True
        assert found
