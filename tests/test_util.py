"""Unit tests for repro._util helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import as_float_array, check_unit_interval, pairs, require, stable_desc_order
from repro.errors import ValidationError


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_validation_error(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")

    def test_validation_error_is_value_error(self):
        with pytest.raises(ValueError):
            require(False, "boom")


class TestAsFloatArray:
    def test_converts_list(self):
        arr = as_float_array([1, 2, 3])
        assert arr.dtype == np.float64
        assert arr.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="one-dimensional"):
            as_float_array([[1.0, 2.0]])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            as_float_array([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="non-finite"):
            as_float_array([float("inf")])


class TestCheckUnitInterval:
    def test_accepts_bounds(self):
        check_unit_interval(np.array([0.0, 0.5, 1.0]))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_unit_interval(np.array([-0.1]))

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_unit_interval(np.array([1.01]))

    def test_empty_ok(self):
        check_unit_interval(np.array([]))


class TestStableDescOrder:
    def test_simple_descending(self):
        order = stable_desc_order([0.1, 0.9, 0.5], [0, 1, 2])
        assert order.tolist() == [1, 2, 0]

    def test_ties_broken_by_ascending_id(self):
        order = stable_desc_order([0.5, 0.5, 0.5], [7, 3, 5])
        # positions of ids 3, 5, 7
        assert order.tolist() == [1, 2, 0]

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            stable_desc_order([1.0], [1, 2])

    def test_empty(self):
        assert stable_desc_order([], []).size == 0


class TestPairs:
    def test_consecutive(self):
        assert list(pairs([1, 2, 3])) == [(1, 2), (2, 3)]

    def test_single_element(self):
        assert list(pairs([1])) == []

    def test_empty(self):
        assert list(pairs([])) == []
