"""Shared fixtures: the paper's running example and small data generators.

Also registers the hypothesis ``ci`` profile (fixed derandomized seed,
no deadline) selected via ``HYPOTHESIS_PROFILE=ci`` — the CI coverage
job runs the property suites reproducibly and without timing flakes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro import Dataset, InvertedIndex, Query

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

# ----------------------------------------------------------------------
# The paper's running example (Figure 1):
#   d1 = (0.8, 0.32), d2 = (0.7, 0.5), d3 = (0.1, 0.8), d4 = (0.1, 0.6)
#   q = (0.8, 0.5), k = 2  ->  R(q) = [d2, d1]
# Library ids are zero-based: paper d1 -> id 0, ..., d4 -> id 3.
# ----------------------------------------------------------------------

RUNNING_EXAMPLE_ROWS = [
    [0.8, 0.32],
    [0.7, 0.5],
    [0.1, 0.8],
    [0.1, 0.6],
]


@pytest.fixture()
def example_dataset() -> Dataset:
    """The Figure 1 dataset."""
    return Dataset.from_dense(RUNNING_EXAMPLE_ROWS)


@pytest.fixture()
def example_index(example_dataset: Dataset) -> InvertedIndex:
    """Inverted index over the Figure 1 dataset."""
    return InvertedIndex(example_dataset)


@pytest.fixture()
def example_query() -> Query:
    """The Figure 1 query q = (0.8, 0.5)."""
    return Query([0, 1], [0.8, 0.5])


def random_sparse_dataset(
    rng: np.random.Generator,
    n_tuples: int,
    n_dims: int,
    density: float = 0.6,
) -> Dataset:
    """Continuous-valued random sparse dataset (general position w.p. 1)."""
    dense = rng.random((n_tuples, n_dims))
    dense *= rng.random((n_tuples, n_dims)) < density
    return Dataset.from_dense(dense)


def random_query(
    rng: np.random.Generator, dataset: Dataset, qlen: int
) -> Query:
    """Random query over dimensions that have at least one non-zero entry."""
    eligible = [d for d in range(dataset.n_dims) if dataset.column_nnz(d) > 0]
    assert len(eligible) >= qlen, "dataset too sparse for requested qlen"
    dims = sorted(rng.choice(eligible, size=qlen, replace=False).tolist())
    weights = rng.uniform(0.2, 0.9, size=qlen)
    return Query(dims, weights)
