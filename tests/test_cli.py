"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.method == "cpt"
        assert args.phi == 0

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--method", "magic"])

    def test_family_choices(self):
        args = build_parser().parse_args(["regions", "--family", "st"])
        assert args.family == "st"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["regions", "--family", "nope"])


class TestDemo:
    def test_demo_prints_figure1(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "top-2: [1, 0]" in out
        assert "-0.457143" in out  # -16/35
        assert "+0.100000" in out

    def test_demo_phi(self, capsys):
        assert main(["demo", "--phi", "1"]) == 0
        out = capsys.readouterr().out
        assert "[1, 2]" in out  # the left φ=1 region's result


class TestRegions:
    def test_regions_st_report(self, capsys):
        assert main(["regions", "--family", "st", "--qlen", "3", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "Immutable regions" in out
        assert "cost:" in out

    def test_regions_json_round_trip(self, capsys):
        assert main(
            ["regions", "--family", "st", "--qlen", "3", "--k", "5", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 5
        assert len(payload["sequences"]) == 3

    def test_composition_only_flag(self, capsys):
        assert main(
            [
                "regions",
                "--family",
                "st",
                "--qlen",
                "3",
                "--k",
                "5",
                "--composition-only",
            ]
        ) == 0
        assert "composition-only" in capsys.readouterr().out


class TestCompare:
    def test_compare_lists_all_methods(self, capsys):
        assert main(
            [
                "compare",
                "--family",
                "st",
                "--qlen",
                "3",
                "--k",
                "5",
                "--queries",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        for method in ("scan", "prune", "thres", "cpt"):
            assert method in out
