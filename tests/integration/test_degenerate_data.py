"""Tie-tolerant tests on adversarially discretised data.

Grid-valued data produces exact score ties and coincident crossings; the
decomposition of a simultaneous cascade into individual events is then
implementation-defined (DESIGN.md §6).  What must still hold, and what
these tests assert, is bound-level agreement: every method produces the
same *multiset of region boundaries* as the brute-force oracle, and the
current (φ=0) region is bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    METHODS,
    Dataset,
    Query,
    brute_force_sequence,
    compute_immutable_regions,
)


def grid_dataset(seed: int, n: int = 60, m: int = 5) -> Dataset:
    rng = np.random.default_rng(seed)
    dense = np.round(rng.random((n, m)) * 4) / 4.0
    dense *= rng.random((n, m)) < 0.7
    return Dataset.from_dense(dense)


def make_query(data: Dataset, seed: int, qlen: int = 3) -> Query | None:
    rng = np.random.default_rng(seed)
    eligible = [d for d in range(data.n_dims) if data.column_nnz(d) > 0]
    if len(eligible) < qlen:
        return None
    dims = sorted(rng.choice(eligible, size=qlen, replace=False).tolist())
    weights = np.round(rng.uniform(0.2, 0.9, size=qlen), 2)
    return Query(dims, weights)


class TestTieTolerantAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_phi0_current_region_exact(self, seed):
        data = grid_dataset(seed)
        query = make_query(data, seed)
        if query is None:
            pytest.skip("too sparse")
        oracle = {
            int(d): brute_force_sequence(data, query, 5, int(d), phi=0)
            for d in query.dims
        }
        for method in METHODS:
            computation = compute_immutable_regions(data, query, 5, method=method)
            for dim in (int(d) for d in query.dims):
                region = computation.region(dim)
                expected = oracle[dim].current
                assert region.lower.delta == pytest.approx(expected.lower.delta)
                assert region.upper.delta == pytest.approx(expected.upper.delta)

    @pytest.mark.parametrize("seed", range(10))
    def test_phi2_bound_multisets_match(self, seed):
        data = grid_dataset(seed)
        query = make_query(data, seed)
        if query is None:
            pytest.skip("too sparse")
        for method in METHODS:
            computation = compute_immutable_regions(
                data, query, 5, method=method, phi=2
            )
            for dim in (int(d) for d in query.dims):
                oracle = brute_force_sequence(data, query, 5, dim, phi=2)
                got = sorted(
                    round(r.upper.delta, 9) for r in computation.sequence(dim)
                )
                expected = sorted(round(r.upper.delta, 9) for r in oracle)
                assert got == expected, f"{method} dim={dim}"

    @pytest.mark.parametrize("seed", range(6))
    def test_heavy_duplicate_rows(self, seed):
        """Many identical rows: score ties everywhere, ids break them."""
        rng = np.random.default_rng(seed)
        base = np.round(rng.random((6, 4)) * 2) / 2.0
        dense = np.repeat(base, 8, axis=0)  # 48 rows, 6 distinct
        data = Dataset.from_dense(dense)
        query = make_query(data, seed, qlen=2)
        if query is None:
            pytest.skip("too sparse")
        for method in METHODS:
            computation = compute_immutable_regions(data, query, 4, method=method)
            for dim in (int(d) for d in query.dims):
                oracle = brute_force_sequence(data, query, 4, dim, phi=0)
                region = computation.region(dim)
                assert region.lower.delta == pytest.approx(
                    oracle.current.lower.delta
                )
                assert region.upper.delta == pytest.approx(
                    oracle.current.upper.delta
                )
