"""Cross-cutting invariants of the cost accounting.

The figures only make sense if the counters mean what the paper means by
them; these tests pin the relationships between evaluations, random
accesses, and the simulated I/O across methods and modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    METHODS,
    DiskModel,
    ImmutableRegionEngine,
    InvertedIndex,
    generate_text_corpus,
    sample_queries,
)


@pytest.fixture(scope="module")
def setup():
    data, stats = generate_text_corpus(n_docs=2_500, vocab_size=700, seed=13)
    index = InvertedIndex(data)
    workload = sample_queries(
        data, qlen=4, n_queries=3, seed=14, weight_scheme="idf", idf=stats.idf,
        min_column_nnz=25,
    )
    return index, workload


class TestEvaluationToIOCoupling:
    @pytest.mark.parametrize("method", METHODS)
    def test_region_random_accesses_match_work(self, setup, method):
        """Region-phase random accesses = evaluations + Phase 3 score fetches."""
        index, workload = setup
        engine = ImmutableRegionEngine(index, method=method)
        for query in workload:
            metrics = engine.compute(query, 10).metrics
            expected = metrics.evals.evaluated_candidates + metrics.evals.phase3_tuples
            assert metrics.region_access.random_accesses == expected

    def test_io_seconds_monotone_in_accesses(self, setup):
        index, workload = setup
        model = DiskModel()
        engine_scan = ImmutableRegionEngine(index, method="scan", disk_model=model)
        engine_cpt = ImmutableRegionEngine(index, method="cpt", disk_model=model)
        for query in workload:
            scan = engine_scan.compute(query, 10).metrics
            cpt = engine_cpt.compute(query, 10).metrics
            if (
                scan.region_access.random_accesses
                > cpt.region_access.random_accesses
            ):
                assert scan.io_seconds > cpt.io_seconds

    @pytest.mark.parametrize("method", METHODS)
    def test_ta_cost_identical_across_methods(self, setup, method):
        """TA runs before any method-specific work: its cost is shared."""
        index, workload = setup
        baseline = ImmutableRegionEngine(index, method="scan")
        engine = ImmutableRegionEngine(index, method=method)
        for query in workload:
            a = baseline.compute(query, 10).metrics.ta_access
            b = engine.compute(query, 10).metrics.ta_access
            assert (a.sorted_accesses, a.random_accesses) == (
                b.sorted_accesses,
                b.random_accesses,
            )


class TestPrunedAccounting:
    def test_pruned_plus_evaluated_covers_candidates(self, setup):
        """For Prune (no thresholding), every candidate is either pruned or
        evaluated, per dimension."""
        index, workload = setup
        engine = ImmutableRegionEngine(index, method="prune")
        for query in workload:
            metrics = engine.compute(query, 10).metrics
            qlen = query.qlen
            # Each dimension partitions |C| candidates into pruned + pool;
            # pool members are all evaluated (plus Phase 3 discoveries can
            # only add).  Totals are per-run sums over dimensions.
            total_seen = (
                metrics.evals.pruned_candidates + metrics.evals.evaluated_candidates
            )
            assert total_seen >= qlen * min(1, metrics.candidates_total)

    def test_phase3_never_negative_and_bounded(self, setup):
        index, workload = setup
        n = index.dataset.n_tuples
        for method in METHODS:
            engine = ImmutableRegionEngine(index, method=method)
            for query in workload:
                metrics = engine.compute(query, 10).metrics
                assert 0 <= metrics.evals.phase3_tuples <= n


class TestDeterminism:
    def test_identical_runs_identical_metrics(self, setup):
        index, workload = setup
        engine = ImmutableRegionEngine(index, method="cpt")
        query = workload[0]
        first = engine.compute(query, 10)
        second = engine.compute(query, 10)
        assert first.result.ids == second.result.ids
        assert (
            first.metrics.evals.evaluated_candidates
            == second.metrics.evals.evaluated_candidates
        )
        assert first.metrics.io_seconds == second.metrics.io_seconds
        for dim in (int(d) for d in query.dims):
            assert first.region(dim).lower.delta == second.region(dim).lower.delta
            assert first.region(dim).upper.delta == second.region(dim).upper.delta
