"""Smoke tests: every shipped example runs end-to-end and self-validates.

The examples assert their own correctness internally (golden values,
prediction-vs-recomputation checks), so a clean exit is a meaningful test.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SRC_DIR = Path(__file__).resolve().parents[2] / "src"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _run_example(name: str, timeout: int = 180) -> subprocess.CompletedProcess:
    """Run one example with the in-repo package importable, like the docs say."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC_DIR) if not existing else f"{SRC_DIR}{os.pathsep}{existing}"
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def test_all_examples_discovered():
    assert set(EXAMPLES) == {
        "quickstart.py",
        "text_retrieval.py",
        "hotel_sensitivity.py",
        "phi_exploration.py",
        "validity_polytope.py",
        "batch_service.py",
        "batch_signatures.py",
    }


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    completed = _run_example(name)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their findings"


def test_quickstart_prints_golden_values():
    completed = _run_example("quickstart.py", timeout=60)
    assert "IR1 = (-16/35, 0.1)" in completed.stdout
