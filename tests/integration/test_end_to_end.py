"""End-to-end integration tests over the three paper dataset families."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    METHODS,
    ImmutableRegionEngine,
    InvertedIndex,
    brute_force_bounds_phi0,
    generate_correlated,
    generate_image_features,
    generate_text_corpus,
    sample_queries,
)


@pytest.fixture(scope="module")
def wsj_like():
    data, stats = generate_text_corpus(n_docs=1200, vocab_size=400, seed=7)
    return InvertedIndex(data), stats


@pytest.fixture(scope="module")
def st_like():
    return InvertedIndex(generate_correlated(n_tuples=1500, n_dims=8, seed=7))


@pytest.fixture(scope="module")
def kb_like():
    return InvertedIndex(
        generate_image_features(n_tuples=800, n_dims=60, seed=7)
    )


def run_all_methods(index, query, k, phi=0):
    outputs = {}
    for method in METHODS:
        engine = ImmutableRegionEngine(index, method=method)
        outputs[method] = engine.compute(query, k, phi=phi)
    return outputs


def assert_methods_agree(outputs, dims):
    reference = outputs["scan"]
    for method, computation in outputs.items():
        assert computation.result.ids == reference.result.ids
        for dim in dims:
            got = computation.sequence(int(dim))
            expected = reference.sequence(int(dim))
            assert len(got) == len(expected), method
            for region_got, region_expected in zip(got, expected):
                assert region_got.lower.delta == pytest.approx(
                    region_expected.lower.delta
                ), method
                assert region_got.upper.delta == pytest.approx(
                    region_expected.upper.delta
                ), method
                assert region_got.result_ids == region_expected.result_ids, method


class TestTextCorpusFamily:
    def test_methods_agree_phi0(self, wsj_like):
        index, _ = wsj_like
        workload = sample_queries(
            index.dataset, qlen=3, n_queries=4, seed=1, min_column_nnz=40
        )
        for query in workload:
            outputs = run_all_methods(index, query, k=10)
            assert_methods_agree(outputs, query.dims)

    def test_methods_agree_phi2(self, wsj_like):
        index, _ = wsj_like
        workload = sample_queries(
            index.dataset, qlen=3, n_queries=2, seed=2, min_column_nnz=40
        )
        for query in workload:
            outputs = run_all_methods(index, query, k=5, phi=2)
            assert_methods_agree(outputs, query.dims)

    def test_bounds_match_oracle(self, wsj_like):
        index, _ = wsj_like
        workload = sample_queries(
            index.dataset, qlen=2, n_queries=2, seed=3, min_column_nnz=40
        )
        for query in workload:
            computation = ImmutableRegionEngine(index, method="cpt").compute(
                query, k=10
            )
            for dim in (int(d) for d in query.dims):
                lo, hi = brute_force_bounds_phi0(index.dataset, query, 10, dim)
                assert computation.region(dim).lower.delta == pytest.approx(lo)
                assert computation.region(dim).upper.delta == pytest.approx(hi)

    def test_pruning_effective_on_sparse_text(self, wsj_like):
        """Figure 10's qualitative claim: Prune evaluates far fewer
        candidates than Scan on WSJ-like data."""
        index, _ = wsj_like
        workload = sample_queries(
            index.dataset, qlen=4, n_queries=5, seed=4, min_column_nnz=40
        )
        scan_total = prune_total = 0
        for query in workload:
            outputs = run_all_methods(index, query, k=10)
            scan_total += outputs["scan"].metrics.evals.evaluated_candidates
            prune_total += outputs["prune"].metrics.evals.evaluated_candidates
        assert prune_total < scan_total / 3


class TestCorrelatedFamily:
    def test_methods_agree(self, st_like):
        workload = sample_queries(
            st_like.dataset, qlen=4, n_queries=3, seed=5, min_column_nnz=40
        )
        for query in workload:
            outputs = run_all_methods(st_like, query, k=10)
            assert_methods_agree(outputs, query.dims)

    def test_pruning_ineffective_on_correlated_data(self, st_like):
        """Figure 11's qualitative claim: Prune ≈ Scan when CL dominates."""
        workload = sample_queries(
            st_like.dataset, qlen=4, n_queries=4, seed=6, min_column_nnz=40
        )
        scan_total = prune_total = cpt_total = 0
        for query in workload:
            outputs = run_all_methods(st_like, query, k=10)
            scan_total += outputs["scan"].metrics.evals.evaluated_candidates
            prune_total += outputs["prune"].metrics.evals.evaluated_candidates
            cpt_total += outputs["cpt"].metrics.evals.evaluated_candidates
        assert prune_total > scan_total * 0.9  # pruning removes almost nothing
        assert cpt_total < scan_total  # thresholding still helps


class TestImageFamily:
    def test_methods_agree(self, kb_like):
        workload = sample_queries(
            kb_like.dataset, qlen=4, n_queries=3, seed=8, min_column_nnz=30
        )
        for query in workload:
            outputs = run_all_methods(kb_like, query, k=10)
            assert_methods_agree(outputs, query.dims)

    def test_composition_only_mode(self, kb_like):
        workload = sample_queries(
            kb_like.dataset, qlen=3, n_queries=2, seed=9, min_column_nnz=30
        )
        for query in workload:
            for method in METHODS:
                engine = ImmutableRegionEngine(
                    kb_like, method=method, count_reorderings=False
                )
                computation = engine.compute(query, k=8)
                for dim in (int(d) for d in query.dims):
                    region = computation.region(dim)
                    assert region.lower.delta <= 0.0 <= region.upper.delta
