"""Tests for dataset persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset
from repro.datasets import load_dataset, save_dataset
from repro.errors import DatasetError


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        data = Dataset.from_dense([[0.1, 0.0], [0.0, 0.9]])
        path = tmp_path / "data.npz"
        save_dataset(data, path)
        loaded = load_dataset(path)
        assert loaded.n_dims == data.n_dims
        assert np.array_equal(loaded.to_dense(), data.to_dense())

    def test_round_trip_preserves_trailing_empty_dims(self, tmp_path):
        data = Dataset.from_rows([([0], [0.5])], n_dims=10)
        path = tmp_path / "data.npz"
        save_dataset(data, path)
        assert load_dataset(path).n_dims == 10

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_dataset(tmp_path / "absent.npz")

    def test_malformed_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, wrong_key=np.array([1]))
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_wrong_version(self, tmp_path):
        data = Dataset.from_dense([[0.5]])
        path = tmp_path / "data.npz"
        indptr, indices, values = data.csr_arrays
        np.savez(
            path,
            format_version=np.int64(99),
            indptr=indptr,
            indices=indices,
            values=values,
            n_dims=np.int64(1),
        )
        with pytest.raises(DatasetError, match="version"):
            load_dataset(path)
