"""Tests for query workload samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, generate_text_corpus, sample_queries
from repro.datasets.workloads import slider_drag
from repro.datasets.workloads import column_frequencies
from repro.errors import QueryError


@pytest.fixture(scope="module")
def corpus():
    return generate_text_corpus(n_docs=400, vocab_size=600, seed=0)


class TestColumnFrequencies:
    def test_matches_column_nnz(self):
        data = Dataset.from_dense([[0.5, 0.0], [0.3, 0.2], [0.0, 0.0]])
        freq = column_frequencies(data)
        assert freq.tolist() == [2, 1]


class TestSampleQueries:
    def test_workload_size_and_qlen(self, corpus):
        data, _ = corpus
        workload = sample_queries(data, qlen=4, n_queries=10, seed=1)
        assert len(workload) == 10
        assert all(q.qlen == 4 for q in workload)

    def test_deterministic_seed(self, corpus):
        data, _ = corpus
        a = sample_queries(data, qlen=3, n_queries=5, seed=2)
        b = sample_queries(data, qlen=3, n_queries=5, seed=2)
        assert all(qa == qb for qa, qb in zip(a, b))

    def test_different_seeds_differ(self, corpus):
        data, _ = corpus
        a = sample_queries(data, qlen=3, n_queries=5, seed=3)
        b = sample_queries(data, qlen=3, n_queries=5, seed=4)
        assert any(qa != qb for qa, qb in zip(a, b))

    def test_min_column_nnz_respected(self, corpus):
        data, _ = corpus
        freq = column_frequencies(data)
        workload = sample_queries(
            data, qlen=4, n_queries=20, seed=5, min_column_nnz=30
        )
        for query in workload:
            assert all(freq[d] >= 30 for d in query.dims)

    def test_weight_range_respected(self, corpus):
        data, _ = corpus
        workload = sample_queries(
            data, qlen=4, n_queries=20, seed=6, min_weight=0.3, max_weight=0.6
        )
        for query in workload:
            assert query.weights.min() >= 0.3
            assert query.weights.max() <= 0.6

    def test_equal_weight_scheme(self, corpus):
        data, _ = corpus
        workload = sample_queries(
            data, qlen=4, n_queries=5, seed=7, weight_scheme="equal", equal_weight=0.5
        )
        for query in workload:
            assert np.all(query.weights == 0.5)

    def test_idf_scheme_orders_weights_by_idf(self, corpus):
        data, stats = corpus
        workload = sample_queries(
            data, qlen=4, n_queries=10, seed=8, weight_scheme="idf", idf=stats.idf
        )
        for query in workload:
            idf_vals = stats.idf[query.dims]
            order_by_idf = np.argsort(idf_vals)
            order_by_weight = np.argsort(query.weights)
            assert np.array_equal(order_by_idf, order_by_weight)

    def test_idf_scheme_requires_idf(self, corpus):
        data, _ = corpus
        with pytest.raises(QueryError, match="idf"):
            sample_queries(data, qlen=2, n_queries=1, weight_scheme="idf")

    def test_df_weighted_prefers_frequent_terms(self, corpus):
        data, _ = corpus
        freq = column_frequencies(data)
        uniform = sample_queries(
            data, qlen=4, n_queries=50, seed=9, dim_scheme="uniform",
            min_column_nnz=1,
        )
        weighted = sample_queries(
            data, qlen=4, n_queries=50, seed=9, dim_scheme="df_weighted",
            min_column_nnz=1,
        )
        mean_uniform = np.mean([freq[q.dims].mean() for q in uniform])
        mean_weighted = np.mean([freq[q.dims].mean() for q in weighted])
        assert mean_weighted > mean_uniform

    def test_mixed_scheme_combines_frequent_and_rare(self, corpus):
        data, _ = corpus
        freq = column_frequencies(data)
        mixed = sample_queries(
            data, qlen=4, n_queries=40, seed=11, dim_scheme="mixed",
            min_column_nnz=1,
        )
        uniform = sample_queries(
            data, qlen=4, n_queries=40, seed=11, dim_scheme="uniform",
            min_column_nnz=1,
        )
        weighted = sample_queries(
            data, qlen=4, n_queries=40, seed=11, dim_scheme="df_weighted",
            min_column_nnz=1,
        )
        mean = lambda wl: np.mean([freq[q.dims].mean() for q in wl])
        assert mean(uniform) < mean(mixed) < mean(weighted)

    def test_mixed_scheme_dims_unique(self, corpus):
        data, _ = corpus
        for query in sample_queries(
            data, qlen=5, n_queries=20, seed=12, dim_scheme="mixed",
            min_column_nnz=1,
        ):
            assert len(set(query.dims.tolist())) == query.qlen

    def test_mixed_scheme_qlen_one(self, corpus):
        data, _ = corpus
        workload = sample_queries(
            data, qlen=1, n_queries=5, seed=13, dim_scheme="mixed",
            min_column_nnz=1,
        )
        assert all(q.qlen == 1 for q in workload)

    def test_unknown_schemes_rejected(self, corpus):
        data, _ = corpus
        with pytest.raises(QueryError):
            sample_queries(data, qlen=2, n_queries=1, dim_scheme="nope")
        with pytest.raises(QueryError):
            sample_queries(data, qlen=2, n_queries=1, weight_scheme="nope")

    def test_impossible_qlen_rejected(self):
        data = Dataset.from_dense([[0.5, 0.5]])
        with pytest.raises(QueryError):
            sample_queries(data, qlen=5, n_queries=1, min_column_nnz=1)

    def test_no_eligible_dims_rejected(self):
        data = Dataset.from_dense([[0.5, 0.5]])
        with pytest.raises(QueryError):
            sample_queries(data, qlen=1, n_queries=1, min_column_nnz=10)


class TestSliderDrag:
    def test_structure_and_determinism(self, corpus):
        data, _ = corpus
        a = slider_drag(data, qlen=3, n_anchors=4, drags_per_anchor=10, seed=5)
        b = slider_drag(data, qlen=3, n_anchors=4, drags_per_anchor=10, seed=5)
        assert [q.weights.tolist() for q in a] == [q.weights.tolist() for q in b]
        assert a.extra["kind"] == "slider_drag"
        assert len(a) == 4 * (1 + 10) + a.extra["n_cold"]

    def test_ticks_perturb_exactly_one_dimension(self, corpus):
        data, _ = corpus
        workload = slider_drag(
            data, qlen=3, n_anchors=3, drags_per_anchor=8, seed=6,
            cold_fraction=0.0,
        )
        queries = workload.queries
        for anchor_start in range(0, len(queries), 9):
            anchor = queries[anchor_start]
            for tick in queries[anchor_start + 1 : anchor_start + 9]:
                assert tick.dims.tolist() == anchor.dims.tolist()
                diffs = int(np.sum(tick.weights != anchor.weights))
                assert diffs <= 1  # a walk may revisit the anchor weight
                assert np.all(tick.weights > 0.0)
                assert np.all(tick.weights <= 1.0)

    def test_every_tick_is_distinct_from_its_predecessor_mostly(self, corpus):
        data, _ = corpus
        workload = slider_drag(
            data, qlen=3, n_anchors=2, drags_per_anchor=30, seed=7,
            cold_fraction=0.0,
        )
        distinct = len({q.weights.tobytes() for q in workload})
        assert distinct > len(workload) * 0.9

    def test_cold_fraction_mixes_in_cold_queries(self, corpus):
        data, _ = corpus
        workload = slider_drag(
            data, qlen=3, n_anchors=3, drags_per_anchor=20, seed=8,
            cold_fraction=0.3,
        )
        assert workload.extra["n_cold"] > 0

    def test_cold_signatures_limits_subspace_pool(self, corpus):
        data, _ = corpus
        workload = slider_drag(
            data, qlen=3, n_anchors=2, drags_per_anchor=40, seed=9,
            cold_fraction=0.5, cold_signatures=2,
        )
        queries = workload.queries
        sigs = {}
        for q in queries:
            sig = tuple(q.dims.tolist())
            sigs[sig] = sigs.get(sig, 0) + 1
        # 2 anchor signatures + at most 2 cold signatures (collisions allowed).
        assert len(sigs) <= 4
        assert workload.extra["cold_signatures"] == 2
        assert workload.extra["n_cold"] > 2  # signatures recur across colds

    def test_parameter_validation(self, corpus):
        data, _ = corpus
        with pytest.raises(Exception):
            slider_drag(data, qlen=3, n_anchors=0, drags_per_anchor=5)
        with pytest.raises(Exception):
            slider_drag(data, qlen=3, n_anchors=1, drags_per_anchor=0)
        with pytest.raises(Exception):
            slider_drag(data, qlen=3, n_anchors=1, drags_per_anchor=5,
                        cold_fraction=1.0)
        with pytest.raises(Exception):
            slider_drag(data, qlen=3, n_anchors=1, drags_per_anchor=5,
                        cold_signatures=0)
