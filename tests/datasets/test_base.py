"""Unit tests for the sparse Dataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset
from repro.errors import DatasetError


@pytest.fixture()
def small() -> Dataset:
    return Dataset.from_dense(
        [
            [0.5, 0.0, 0.25],
            [0.0, 0.0, 0.0],
            [0.0, 1.0, 0.75],
        ]
    )


class TestConstruction:
    def test_from_dense_shape(self, small):
        assert small.n_tuples == 3
        assert small.n_dims == 3
        assert small.nnz == 4

    def test_from_dense_rejects_1d(self):
        with pytest.raises(DatasetError):
            Dataset.from_dense([1.0, 2.0])

    def test_from_rows(self):
        data = Dataset.from_rows([([2, 0], [0.3, 0.1]), ([], [])], n_dims=4)
        assert data.n_tuples == 2
        assert data.value(0, 0) == pytest.approx(0.1)
        assert data.value(0, 2) == pytest.approx(0.3)
        assert data.row(1)[0].size == 0

    def test_from_rows_length_mismatch(self):
        with pytest.raises(DatasetError):
            Dataset.from_rows([([1], [0.1, 0.2])], n_dims=3)

    def test_rejects_out_of_range_values(self):
        with pytest.raises(DatasetError):
            Dataset.from_dense([[1.5]])

    def test_rejects_column_out_of_range(self):
        with pytest.raises(DatasetError):
            Dataset(np.array([0, 1]), np.array([5]), np.array([0.5]), n_dims=3)

    def test_rejects_duplicate_columns_in_row(self):
        with pytest.raises(DatasetError):
            Dataset(
                np.array([0, 2]),
                np.array([1, 1]),
                np.array([0.2, 0.3]),
                n_dims=3,
            )

    def test_rejects_bad_indptr(self):
        with pytest.raises(DatasetError):
            Dataset(np.array([0, 2]), np.array([0]), np.array([0.5]), n_dims=2)

    def test_density(self, small):
        assert small.density == pytest.approx(4 / 9)


class TestRowAccess:
    def test_row_contents(self, small):
        dims, vals = small.row(0)
        assert dims.tolist() == [0, 2]
        assert vals.tolist() == [0.5, 0.25]

    def test_empty_row(self, small):
        dims, vals = small.row(1)
        assert dims.size == 0 and vals.size == 0

    def test_row_out_of_range(self, small):
        with pytest.raises(DatasetError):
            small.row(3)

    def test_value_present(self, small):
        assert small.value(2, 1) == pytest.approx(1.0)

    def test_value_absent_is_zero(self, small):
        assert small.value(0, 1) == 0.0

    def test_values_at_mixed(self, small):
        out = small.values_at(0, np.array([0, 1, 2]))
        assert out.tolist() == [0.5, 0.0, 0.25]

    def test_values_at_all_absent(self, small):
        out = small.values_at(1, np.array([0, 1, 2]))
        assert out.tolist() == [0.0, 0.0, 0.0]


class TestColumnAccess:
    def test_column_contents(self, small):
        ids, vals = small.column(2)
        assert ids.tolist() == [0, 2]
        assert vals.tolist() == [0.25, 0.75]

    def test_column_cached_identity(self, small):
        assert small.column(2) is small.column(2)

    def test_column_nnz(self, small):
        assert small.column_nnz(1) == 1
        assert small.column_nnz(0) == 1

    def test_column_out_of_range(self, small):
        with pytest.raises(DatasetError):
            small.column(3)

    def test_empty_column(self):
        data = Dataset.from_rows([([0], [0.5])], n_dims=3)
        ids, vals = data.column(2)
        assert ids.size == 0


class TestScoring:
    def test_score_of_matches_manual(self, small):
        dims = np.array([0, 2])
        weights = np.array([0.5, 0.4])
        assert small.score_of(0, dims, weights) == pytest.approx(0.5 * 0.5 + 0.4 * 0.25)

    def test_scores_vector(self, small):
        dims = np.array([1, 2])
        weights = np.array([1.0, 1.0])
        scores = small.scores(dims, weights)
        assert scores.tolist() == pytest.approx([0.25, 0.0, 1.75])

    def test_scores_match_dense_dot(self):
        rng = np.random.default_rng(0)
        dense = rng.random((20, 6)) * (rng.random((20, 6)) < 0.5)
        data = Dataset.from_dense(dense)
        dims = np.array([1, 3, 4])
        weights = np.array([0.3, 0.6, 0.9])
        expected = dense[:, dims] @ weights
        assert np.allclose(data.scores(dims, weights), expected)


class TestExport:
    def test_to_dense_round_trip(self, small):
        dense = small.to_dense()
        again = Dataset.from_dense(dense)
        assert np.array_equal(again.to_dense(), dense)

    def test_repr_mentions_shape(self, small):
        assert "n_tuples=3" in repr(small)
