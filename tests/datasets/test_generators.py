"""Tests for the three dataset generators (WSJ-like, KB-like, ST-like)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    generate_correlated,
    generate_image_features,
    generate_independent,
    generate_text_corpus,
)
from repro.errors import ValidationError


class TestCorrelatedST:
    def test_shape(self):
        data = generate_correlated(n_tuples=500, n_dims=8, seed=1)
        assert data.n_tuples == 500
        assert data.n_dims == 8

    def test_values_in_unit_cube(self):
        data = generate_correlated(n_tuples=300, n_dims=5, seed=2)
        dense = data.to_dense()
        assert dense.min() >= 0.0 and dense.max() <= 1.0

    def test_deterministic_seed(self):
        a = generate_correlated(50, 4, seed=3).to_dense()
        b = generate_correlated(50, 4, seed=3).to_dense()
        assert np.array_equal(a, b)

    def test_pairwise_correlation_near_rho(self):
        data = generate_correlated(n_tuples=6000, n_dims=6, rho=0.5, seed=4)
        dense = data.to_dense()
        corr = np.corrcoef(dense.T)
        off_diag = corr[~np.eye(6, dtype=bool)]
        # Clipping attenuates the correlation slightly; 0.5 +- 0.1 is fine.
        assert abs(float(off_diag.mean()) - 0.5) < 0.1

    def test_zero_rho_near_independent(self):
        data = generate_correlated(n_tuples=6000, n_dims=4, rho=0.0, seed=5)
        corr = np.corrcoef(data.to_dense().T)
        off_diag = corr[~np.eye(4, dtype=bool)]
        assert abs(float(off_diag.mean())) < 0.05

    def test_rejects_bad_rho(self):
        with pytest.raises(ValidationError):
            generate_correlated(10, 4, rho=1.0)
        with pytest.raises(ValidationError):
            generate_correlated(10, 4, rho=-0.2)


class TestIndependent:
    def test_dense_and_uniform(self):
        data = generate_independent(n_tuples=1000, n_dims=3, seed=0)
        dense = data.to_dense()
        assert data.density > 0.99
        assert 0.4 < dense.mean() < 0.6


class TestTextCorpusWSJ:
    def test_shape_and_stats(self):
        data, stats = generate_text_corpus(n_docs=300, vocab_size=500, seed=0)
        assert data.n_tuples == 300
        assert data.n_dims == 500
        assert stats.n_docs == 300
        assert stats.document_frequency.shape == (500,)

    def test_extreme_sparsity(self):
        data, _ = generate_text_corpus(n_docs=400, vocab_size=2000, seed=1)
        # Each doc touches ~100 distinct terms out of 2000.
        assert data.density < 0.1

    def test_values_in_unit_interval(self):
        data, _ = generate_text_corpus(n_docs=200, vocab_size=300, seed=2)
        _, _, values = data.csr_arrays
        assert values.min() > 0.0 and values.max() <= 1.0

    def test_zipf_head_heavier_than_tail(self):
        _, stats = generate_text_corpus(n_docs=500, vocab_size=1000, seed=3)
        df = stats.document_frequency
        assert df[:50].sum() > df[500:].sum()

    def test_idf_zero_for_unused_terms(self):
        _, stats = generate_text_corpus(n_docs=100, vocab_size=5000, seed=4)
        unused = stats.document_frequency == 0
        assert unused.any()
        assert np.all(stats.idf[unused] == 0.0)

    def test_deterministic_seed(self):
        a, _ = generate_text_corpus(100, 200, seed=5)
        b, _ = generate_text_corpus(100, 200, seed=5)
        assert np.array_equal(a.csr_arrays[2], b.csr_arrays[2])

    def test_rejects_tiny_corpus(self):
        with pytest.raises(ValidationError):
            generate_text_corpus(n_docs=1, vocab_size=10)


class TestImageFeaturesKB:
    def test_shape(self):
        data = generate_image_features(n_tuples=200, n_dims=50, seed=0)
        assert data.n_tuples == 200
        assert data.n_dims == 50

    def test_partial_sparsity(self):
        data = generate_image_features(
            n_tuples=300, n_dims=100, sparsity=0.8, seed=1
        )
        assert 0.02 < data.density < 0.35

    def test_values_in_unit_interval(self):
        data = generate_image_features(n_tuples=100, n_dims=40, seed=2)
        _, _, values = data.csr_arrays
        assert values.min() >= 0.0 and values.max() <= 1.0

    def test_moderate_correlation_from_factors(self):
        dense = generate_image_features(
            n_tuples=3000, n_dims=30, rank=3, sparsity=0.0, noise_std=0.2, seed=3
        ).to_dense()
        corr = np.corrcoef(dense.T)
        off_diag = np.abs(corr[~np.eye(30, dtype=bool)])
        # Low-rank structure should induce clearly non-zero typical correlation.
        assert float(np.median(off_diag)) > 0.1

    def test_rejects_bad_rank(self):
        with pytest.raises(ValidationError):
            generate_image_features(10, 5, rank=6)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValidationError):
            generate_image_features(10, 5, sparsity=1.0)
