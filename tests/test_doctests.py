"""Run the doctest examples embedded in public docstrings.

The package docstring and the engine docstring both carry runnable
examples (the Figure 1 quickstart); keeping them under test guarantees the
documentation never drifts from the API.
"""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.core.engine
import repro.metrics.timer


@pytest.mark.parametrize(
    "module",
    [repro, repro.core.engine, repro.metrics.timer],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the example must actually exist
