"""Schedules: arrival processes, mutation interleave, replay files."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Mutation, Query
from repro.errors import ReproError, ValidationError
from repro.loadgen import (
    Arrival,
    LoadStep,
    Schedule,
    build_schedule,
    mutation_from_spec,
    mutation_to_spec,
    sample_update_mutations,
)


def make_queries(n=8):
    return [Query([0, 1], [0.5, 0.3 + 0.01 * i]) for i in range(n)]


def make_dataset(n=40, m=6, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


class TestArrivalAndStep:
    def test_arrival_validation(self):
        with pytest.raises(ValidationError):
            Arrival(at=-0.1, op="query", index=0, step=0)
        with pytest.raises(ValidationError):
            Arrival(at=0.0, op="nope", index=0, step=0)
        with pytest.raises(ValidationError):
            Arrival(at=0.0, op="query", index=-1, step=0)

    def test_step_validation(self):
        with pytest.raises(ValidationError):
            LoadStep(rate=0.0, duration=1.0)
        with pytest.raises(ValidationError):
            LoadStep(rate=10.0, duration=0.0)
        with pytest.raises(ValidationError):
            LoadStep(rate=10.0, duration=1.0, process="uniform")


class TestBuildSchedule:
    def test_fixed_rate_count_and_spacing(self):
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=10.0, duration=2.0, process="fixed")],
        )
        times = [a.at for a in schedule.arrivals]
        assert len(times) == 20
        gaps = np.diff(times)
        assert np.allclose(gaps, 0.1)
        assert times[0] == 0.0

    def test_deterministic_for_fixed_seed(self):
        kwargs = dict(
            queries=make_queries(),
            steps=[LoadStep(rate=50.0, duration=1.0, process="poisson")],
            seed=7,
        )
        a = build_schedule(**kwargs)
        b = build_schedule(**kwargs)
        assert [x.at for x in a.arrivals] == [x.at for x in b.arrivals]
        c = build_schedule(**{**kwargs, "seed": 8})
        assert [x.at for x in a.arrivals] != [x.at for x in c.arrivals]

    def test_poisson_rate_is_roughly_honoured(self):
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=200.0, duration=5.0, process="poisson")],
            seed=3,
        )
        # 1000 expected arrivals; 5 sigma ~ 158.
        assert 800 <= schedule.n_queries <= 1200

    def test_steps_span_consecutive_windows(self):
        schedule = build_schedule(
            make_queries(),
            [
                LoadStep(rate=20.0, duration=1.0, process="fixed"),
                LoadStep(rate=40.0, duration=1.0, process="fixed"),
            ],
        )
        for arrival in schedule.arrivals_of_step(0):
            assert 0.0 <= arrival.at < 1.0
        for arrival in schedule.arrivals_of_step(1):
            assert 1.0 <= arrival.at < 2.0
        assert len(schedule.arrivals_of_step(0)) == 20
        assert len(schedule.arrivals_of_step(1)) == 40

    def test_bursty_has_silent_off_windows(self):
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=100.0, duration=4.0, process="bursty")],
            seed=1,
            on_seconds=0.5,
            off_seconds=0.5,
        )
        times = np.array([a.at for a in schedule.arrivals])
        # All arrivals land inside on-windows ([0,.5), [1,1.5), ...).
        assert np.all((times % 1.0) < 0.5)
        # Long-run average still approximates the nominal rate.
        assert 250 <= times.size <= 550

    def test_queries_assigned_cyclically_in_workload_order(self):
        queries = make_queries(3)
        schedule = build_schedule(
            queries, [LoadStep(rate=10.0, duration=1.0, process="fixed")]
        )
        assert [a.index for a in schedule.arrivals] == [i % 3 for i in range(10)]

    def test_mutation_stream_interleaves_across_whole_schedule(self):
        mutations = [Mutation.update(i, 0, 0.5) for i in range(4)]
        schedule = build_schedule(
            make_queries(),
            [
                LoadStep(rate=10.0, duration=1.0, process="fixed"),
                LoadStep(rate=10.0, duration=1.0, process="fixed"),
            ],
            mutations=mutations,
            mutation_rate=6.0,
        )
        mutate = [a for a in schedule.arrivals if a.op == "mutate"]
        assert len(mutate) == 12
        # Spread over both steps and tagged with the step they land in.
        assert {a.step for a in mutate} == {0, 1}
        for arrival in mutate:
            assert (arrival.at < 1.0) == (arrival.step == 0)
        # Sorted interleave with the query arrivals.
        times = [a.at for a in schedule.arrivals]
        assert times == sorted(times)

    def test_mutation_rate_needs_pool(self):
        with pytest.raises(ValidationError):
            build_schedule(
                make_queries(),
                [LoadStep(rate=10.0, duration=1.0)],
                mutation_rate=1.0,
            )


class TestReplayFile:
    def test_round_trip_is_bit_exact(self, tmp_path):
        mutations = sample_update_mutations(make_dataset(), n=5, seed=2)
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=30.0, duration=1.0, process="poisson")],
            seed=11,
            mutations=mutations,
            mutation_rate=3.0,
            meta={"family": "unit"},
        )
        path = schedule.save(tmp_path / "replay.json")
        loaded = Schedule.load(path)
        assert loaded.seed == schedule.seed
        assert loaded.meta == schedule.meta
        assert loaded.steps == schedule.steps
        assert loaded.arrivals == schedule.arrivals  # floats bit-exact
        assert [list(q.dims) for q in loaded.queries] == [
            list(q.dims) for q in schedule.queries
        ]
        assert [list(q.weights) for q in loaded.queries] == [
            list(q.weights) for q in schedule.queries
        ]
        assert [mutation_to_spec(m) for m in loaded.mutations] == [
            mutation_to_spec(m) for m in schedule.mutations
        ]

    def test_version_is_checked(self, tmp_path):
        schedule = build_schedule(
            make_queries(), [LoadStep(rate=5.0, duration=1.0, process="fixed")]
        )
        payload = schedule.to_payload()
        payload["version"] = 99
        with pytest.raises(ValidationError):
            Schedule.from_payload(payload)

    def test_arrivals_must_be_sorted(self):
        queries = make_queries(2)
        with pytest.raises(ValidationError):
            Schedule(
                queries=queries,
                arrivals=[
                    Arrival(at=1.0, op="query", index=0, step=0),
                    Arrival(at=0.5, op="query", index=1, step=0),
                ],
                steps=[LoadStep(rate=1.0, duration=2.0)],
            )

    def test_arrival_indexes_validated_against_pools(self):
        with pytest.raises(ValidationError):
            Schedule(
                queries=make_queries(2),
                arrivals=[Arrival(at=0.0, op="mutate", index=0, step=0)],
                steps=[LoadStep(rate=1.0, duration=1.0)],
            )


class TestMutationSpecs:
    def test_all_kinds_round_trip(self):
        for mutation in (
            Mutation.insert([0, 2], [0.5, 0.25]),
            Mutation.delete(7),
            Mutation.update(3, 1, 0.125),
        ):
            spec = mutation_to_spec(mutation)
            back = mutation_from_spec(spec)
            assert mutation_to_spec(back) == spec

    def test_unknown_kind_raises(self):
        with pytest.raises(ReproError):
            mutation_from_spec({"kind": "upsert"})

    def test_sample_update_mutations_touch_stored_coordinates(self):
        data = make_dataset()
        mutations = sample_update_mutations(data, n=32, seed=5, scale=0.1)
        assert len(mutations) == 32
        indptr, indices, values = data.csr_arrays
        for mutation in mutations:
            assert mutation.kind == "update"
            row = mutation.tuple_id
            lo, hi = int(indptr[row]), int(indptr[row + 1])
            stored_dims = set(int(d) for d in indices[lo:hi])
            assert mutation.dims[0] in stored_dims
            # Nudge stays within ±10% of the stored value.
            slot = lo + list(indices[lo:hi]).index(mutation.dims[0])
            assert mutation.values[0] == pytest.approx(
                float(values[slot]), rel=0.11
            )

    def test_sample_is_seeded(self):
        data = make_dataset()
        a = sample_update_mutations(data, n=8, seed=1)
        b = sample_update_mutations(data, n=8, seed=1)
        assert [mutation_to_spec(m) for m in a] == [
            mutation_to_spec(m) for m in b
        ]
