"""The open-loop driver: firing discipline, targets, structured outcomes."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro import Dataset, Query, ShardedQueryService
from repro.loadgen import (
    GatewayTarget,
    InProcessTarget,
    LoadStep,
    build_schedule,
    replay,
    run_replay,
    sample_update_mutations,
)
from repro.service import AsyncGateway, FaultPlan


def make_dataset(n=60, m=6, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


def make_queries(n=4):
    return [Query([0, 2, 4], [0.7, 0.3, 0.2 + 0.05 * i]) for i in range(n)]


class SlowTarget:
    """A fake target with a fixed service time; counts peak concurrency."""

    def __init__(self, seconds=0.05):
        self.seconds = seconds
        self.in_flight = 0
        self.peak = 0
        self.closed = False

    async def query(self, query):
        self.in_flight += 1
        self.peak = max(self.peak, self.in_flight)
        await asyncio.sleep(self.seconds)
        self.in_flight -= 1
        return "ok", "computed", ""

    async def mutate(self, mutation):
        await asyncio.sleep(self.seconds)
        return "ok", ""

    async def close(self):
        self.closed = True


class TestOpenLoopProperty:
    def test_fires_regardless_of_completion(self):
        # 20 arrivals in 0.2s against a 50 ms service: a closed loop
        # would take >= 1.0 s; the open loop overlaps them all.
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=100.0, duration=0.2, process="fixed")],
        )
        target = SlowTarget(seconds=0.05)
        start = time.perf_counter()
        outcomes = run_replay(schedule, target)
        wall = time.perf_counter() - start
        assert len(outcomes) == 20
        assert all(o.outcome == "ok" for o in outcomes)
        assert wall < 0.8  # closed-loop floor would be 1.0 s
        assert target.peak > 1  # requests genuinely overlapped
        assert target.closed

    def test_latency_measured_from_scheduled_arrival(self):
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=50.0, duration=0.2, process="fixed")],
        )
        outcomes = run_replay(schedule, SlowTarget(seconds=0.02))
        for o in outcomes:
            assert o.fired_at >= o.scheduled_at - 1e-4
            assert o.completed_at - o.scheduled_at >= 0.019

    def test_speed_rescales_time(self):
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=20.0, duration=1.0, process="fixed")],
        )
        start = time.perf_counter()
        outcomes = run_replay(schedule, SlowTarget(seconds=0.001), speed=4.0)
        wall = time.perf_counter() - start
        assert len(outcomes) == 20
        assert wall < 0.7  # nominal 1.0 s replayed at 4x


class TestInProcessTarget:
    def test_replay_against_sharded_service(self):
        service = ShardedQueryService(make_dataset(), n_shards=2)
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=40.0, duration=0.5, process="fixed")],
        )
        try:
            target = InProcessTarget(service, k=5, max_workers=4)
            outcomes = run_replay(schedule, target)
        finally:
            service.close()
        assert len(outcomes) == 20
        assert all(o.outcome == "ok" for o in outcomes)
        # The 4-query pool cycles, so repeats land in the cache tiers.
        tiers = {o.tier for o in outcomes}
        assert "computed" in tiers
        assert tiers & {"exact", "region"}

    def test_mutations_race_reads_and_advance_epoch(self):
        data = make_dataset()
        service = ShardedQueryService(data, n_shards=2)
        mutations = sample_update_mutations(data, n=16, seed=3)
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=40.0, duration=0.5, process="poisson")],
            mutations=mutations,
            mutation_rate=20.0,
        )
        assert schedule.n_mutations == 10
        epoch_before = service.index.epoch
        try:
            target = InProcessTarget(service, k=5, max_workers=4)
            outcomes = run_replay(schedule, target)
            epoch_after = service.index.epoch
        finally:
            service.close()
        mutate = [o for o in outcomes if o.op == "mutate"]
        assert len(mutate) == 10
        assert all(o.outcome == "ok" for o in mutate)
        assert epoch_after == epoch_before + 10
        queries = [o for o in outcomes if o.op == "query"]
        assert queries and all(o.outcome == "ok" for o in queries)

    def test_deadline_exhaustion_is_an_outcome(self):
        service = ShardedQueryService(make_dataset(), n_shards=2)
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=20.0, duration=0.25, process="fixed")],
        )
        try:
            # An impossible budget: every request exhausts it.
            target = InProcessTarget(service, k=5, deadline_ms=1e-6)
            outcomes = run_replay(schedule, target)
        finally:
            service.close()
        assert outcomes and all(o.outcome == "deadline" for o in outcomes)
        assert all(o.detail for o in outcomes)  # names the budget site

    def test_max_pending_sheds(self):
        class StallingService:
            """Duck-typed service whose every query blocks for 50 ms."""

            def execute_tiered(self, query, k, phi, method, deadline=None):
                time.sleep(0.05)
                return None, "computed"

        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=200.0, duration=0.25, process="fixed")],
        )
        target = InProcessTarget(
            StallingService(), k=5, max_workers=2, max_pending=2
        )
        outcomes = run_replay(schedule, target)
        kinds = {o.outcome for o in outcomes}
        assert "shed" in kinds and "ok" in kinds
        shed = [o for o in outcomes if o.outcome == "shed"]
        assert all(o.detail == "max_pending" for o in shed)
        # A shed completes instantly — it never waited on the service.
        assert all(o.completed_at - o.fired_at < 0.05 for o in shed)

    def test_fault_plan_surfaces_as_structured_outcomes(self):
        plan = FaultPlan.sample(
            seed=5, n_shards=2, n_faults=4, stall_seconds=0.01
        )
        service = ShardedQueryService(
            make_dataset(),
            n_shards=2,
            fault_plan=plan,
            on_shard_failure="degraded",
        )
        schedule = build_schedule(
            make_queries(8),
            [LoadStep(rate=40.0, duration=0.5, process="fixed")],
        )
        try:
            target = InProcessTarget(service, k=5, max_workers=4)
            outcomes = run_replay(schedule, target)
        finally:
            service.close()
        # Nothing raises out of the replay: every arrival has a
        # structured outcome, whatever the fault plan did underneath.
        assert len(outcomes) == 20
        assert {o.outcome for o in outcomes} <= {"ok", "degraded", "error"}


class TestGatewayTarget:
    def run_with_gateway(self, coro_factory, **gateway_kwargs):
        service = ShardedQueryService(make_dataset(), n_shards=2)
        gateway = AsyncGateway(service, k=5, **gateway_kwargs)

        async def main():
            host, port = await gateway.start()
            try:
                return await coro_factory(host, port)
            finally:
                await gateway.stop()

        try:
            return asyncio.run(main())
        finally:
            service.close()

    def test_replay_over_tcp(self):
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=40.0, duration=0.5, process="fixed")],
        )

        async def drive(host, port):
            target = GatewayTarget(host, port)
            try:
                return target, await replay(schedule, target)
            finally:
                await target.close()

        target, outcomes = self.run_with_gateway(drive)
        assert len(outcomes) == 20
        assert all(o.outcome == "ok" for o in outcomes)
        assert {o.tier for o in outcomes} >= {"computed"}
        # Open loop over a sequential protocol: the pool grew past one
        # connection only if requests genuinely overlapped; either way
        # it stayed bounded by the arrival count.
        assert 1 <= target.connections_opened <= 20

    def test_mutate_over_tcp(self):
        data = make_dataset()
        mutations = sample_update_mutations(data, n=4, seed=1)
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=20.0, duration=0.25, process="fixed")],
            mutations=mutations,
            mutation_rate=8.0,
        )

        async def drive(host, port):
            target = GatewayTarget(host, port)
            try:
                return await replay(schedule, target)
            finally:
                await target.close()

        outcomes = self.run_with_gateway(drive)
        mutate = [o for o in outcomes if o.op == "mutate"]
        assert len(mutate) == 2
        assert all(o.outcome == "ok" for o in mutate)

    def test_overload_classified_as_shed(self):
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=100.0, duration=0.3, process="fixed")],
        )

        async def drive(host, port):
            target = GatewayTarget(host, port)
            try:
                return await replay(schedule, target)
            finally:
                await target.close()

        # A token bucket that admits ~one request then refuses.
        outcomes = self.run_with_gateway(drive, rate=1e-9, burst=1.0)
        kinds = {o.outcome for o in outcomes}
        assert "shed" in kinds
        assert all(o.outcome in ("ok", "shed") for o in outcomes)

    def test_dead_server_is_an_error_outcome(self):
        schedule = build_schedule(
            make_queries(),
            [LoadStep(rate=50.0, duration=0.1, process="fixed")],
        )
        # Nothing listens on this port (bound then immediately closed).
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        target = GatewayTarget("127.0.0.1", port)
        outcomes = run_replay(schedule, target)
        assert outcomes and all(o.outcome == "error" for o in outcomes)
