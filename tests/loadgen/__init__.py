"""Tests for the open-loop load harness (`repro.loadgen`)."""
