"""Knee search: bracketing, bisection, and recorded evidence."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.loadgen import KneeResult, find_knee


def threshold_probe(knee, calls=None):
    """A perfectly monotone service: passes at or below *knee* qps."""

    def probe(rate):
        if calls is not None:
            calls.append(rate)
        return rate <= knee, {"rate": rate}

    return probe


class TestBracketing:
    def test_lo_failing_means_no_knee(self):
        result = find_knee(threshold_probe(5.0), lo=10.0, hi=100.0)
        assert result.knee_qps is None
        assert len(result.probes) == 1  # stopped at the first probe
        assert not result.probes[0].passed

    def test_hi_passing_returns_hi(self):
        result = find_knee(threshold_probe(1000.0), lo=10.0, hi=100.0)
        assert result.knee_qps == 100.0
        assert len(result.probes) == 2

    def test_degenerate_range(self):
        result = find_knee(threshold_probe(50.0), lo=20.0, hi=20.0)
        assert result.knee_qps == 20.0
        assert len(result.probes) == 1


class TestBisection:
    @pytest.mark.parametrize("knee", [130.0, 400.0, 601.0])
    def test_converges_within_resolution(self, knee):
        lo, hi, iterations = 100.0, 800.0, 8
        result = find_knee(
            threshold_probe(knee), lo=lo, hi=hi, iterations=iterations
        )
        resolution = (hi - lo) / 2**iterations
        assert result.knee_qps is not None
        assert result.knee_qps <= knee  # never overstates capacity
        assert knee - result.knee_qps <= resolution + 1e-9
        assert len(result.probes) == 2 + iterations

    def test_each_iteration_costs_one_probe(self):
        calls = []
        find_knee(
            threshold_probe(300.0, calls), lo=100.0, hi=800.0, iterations=3
        )
        assert len(calls) == 5  # lo, hi, 3 bisections

    def test_evidence_recorded_per_probe(self):
        result = find_knee(
            threshold_probe(300.0), lo=100.0, hi=800.0, iterations=2
        )
        payload = result.as_dict()
        assert payload["n_probes"] == len(payload["probes"]) == 4
        for probe in payload["probes"]:
            assert probe["detail"] == {"rate": probe["rate"]}
        assert payload["lo"] == 100.0 and payload["hi"] == 800.0

    def test_nonmonotone_probe_returns_last_passing_mid(self):
        # A flaky pass above the true knee is taken at face value — the
        # documented caveat: the knee is the highest *observed* pass.
        verdicts = iter([True, False, True, False])
        result = find_knee(
            lambda rate: (next(verdicts), {}), lo=10.0, hi=90.0, iterations=2
        )
        assert result.knee_qps == 50.0


class TestValidation:
    def test_bad_arguments(self):
        probe = threshold_probe(50.0)
        with pytest.raises(ValidationError):
            find_knee(probe, lo=0.0, hi=10.0)
        with pytest.raises(ValidationError):
            find_knee(probe, lo=10.0, hi=5.0)
        with pytest.raises(ValidationError):
            find_knee(probe, lo=10.0, hi=20.0, iterations=0)
