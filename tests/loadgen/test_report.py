"""Reservoir percentiles, step bucketing, and the SLO gate."""

from __future__ import annotations

import random

import pytest

from repro import Query
from repro.errors import ValidationError
from repro.loadgen import (
    LatencyReservoir,
    LoadStep,
    RequestOutcome,
    SloGate,
    build_report,
    build_schedule,
)
from repro.service.stats import sorted_percentile


def brute_percentile(values, q):
    return sorted_percentile(sorted(values), q)


class TestLatencyReservoir:
    def test_exact_below_capacity_matches_sort_oracle(self):
        rng = random.Random(0)
        values = [rng.uniform(0.001, 0.5) for _ in range(500)]
        reservoir = LatencyReservoir(capacity=1000)
        for v in values:
            reservoir.add(v)
        assert reservoir.exact
        for q in (50.0, 95.0, 99.0, 99.9):
            assert reservoir.percentile(q) == brute_percentile(values, q)
        assert reservoir.count == 500
        assert reservoir.mean == pytest.approx(sum(values) / 500)
        assert reservoir.max == max(values)

    def test_bounded_memory_beyond_capacity(self):
        reservoir = LatencyReservoir(capacity=64, seed=1)
        for i in range(10_000):
            reservoir.add(i / 10_000.0)
        assert len(reservoir._sample) == 64
        assert not reservoir.exact
        # Exact streaming figures survive the sampling.
        assert reservoir.count == 10_000
        assert reservoir.max == pytest.approx(0.9999)
        assert reservoir.mean == pytest.approx(0.49995, rel=1e-6)
        # The sampled median is a real observation near the true median.
        assert 0.2 < reservoir.percentile(50.0) < 0.8

    def test_sampling_is_seeded(self):
        def run(seed):
            r = LatencyReservoir(capacity=16, seed=seed)
            for i in range(200):
                r.add(i * 0.001)
            return sorted(r._sample)

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_empty_percentile_is_none_not_zero(self):
        # Regression: percentile([]) == 0.0 in the stats layer reads as
        # a perfect p99; the loadgen reservoir must answer "no data".
        reservoir = LatencyReservoir()
        assert reservoir.percentile(99.0) is None
        assert reservoir.percentiles() == {
            "p50": None,
            "p95": None,
            "p99": None,
            "p99_9": None,
        }

    def test_validation(self):
        with pytest.raises(ValidationError):
            LatencyReservoir(capacity=0)
        with pytest.raises(ValidationError):
            LatencyReservoir().add(-0.001)


def make_schedule(rates=(10.0,), duration=1.0):
    queries = [Query([0, 1], [0.5, 0.4])]
    steps = [
        LoadStep(rate=rate, duration=duration, process="fixed")
        for rate in rates
    ]
    return build_schedule(queries, steps)


def outcome(step, scheduled, fired, completed, kind, op="query"):
    return RequestOutcome(
        step=step,
        op=op,
        scheduled_at=scheduled,
        fired_at=fired,
        completed_at=completed,
        outcome=kind,
    )


class TestBuildReport:
    def test_buckets_by_step_and_counts_offered_load(self):
        schedule = make_schedule(rates=(10.0, 20.0))
        outcomes = [
            outcome(0, 0.0, 0.001, 0.020, "ok"),
            outcome(0, 0.1, 0.101, 0.140, "deadline"),
            outcome(1, 1.0, 1.002, 1.050, "ok"),
            outcome(1, 1.1, 1.1, 1.1, "shed"),
            outcome(1, 1.2, 1.25, 1.30, "error"),
        ]
        report = build_report(outcomes, schedule)
        s0, s1 = report.steps
        # n_scheduled comes from the schedule, not from the outcomes —
        # an unanswered request still counts against attainment.
        assert s0.n_scheduled == 10 and s1.n_scheduled == 20
        assert s0.n_ok == 1 and s0.n_deadline == 1
        assert s1.n_ok == 1 and s1.n_shed == 1 and s1.n_error == 1
        assert s0.attainment == pytest.approx(0.1)
        assert s1.attainment == pytest.approx(0.05)
        # Latency measures from the scheduled arrival (queue included).
        assert s0.latency.percentile(50.0) == pytest.approx(0.020)
        assert s0.service_latency.percentile(50.0) == pytest.approx(0.019)
        # Fire lag tracks the worst scheduling slip.
        assert s1.max_lag == pytest.approx(0.05)

    def test_mutations_bucket_separately(self):
        schedule = make_schedule()
        outcomes = [
            outcome(0, 0.5, 0.5, 0.51, "ok", op="mutate"),
            outcome(0, 0.6, 0.6, 0.61, "error", op="mutate"),
        ]
        report = build_report(outcomes, schedule)
        step = report.steps[0]
        assert step.n_mutations == 2
        assert step.n_mutation_failures == 1
        assert step.n_ok == 0  # mutations never inflate query attainment
        assert step.latency.count == 0

    def test_as_dict_shape(self):
        schedule = make_schedule()
        report = build_report(
            [outcome(0, 0.0, 0.0, 0.01, "ok")], schedule, wall_seconds=1.5
        )
        payload = report.as_dict()
        assert payload["wall_seconds"] == 1.5
        (step,) = payload["steps"]
        assert step["latency_ms"]["p99"] == pytest.approx(10.0)
        assert step["latency_ms"]["exact"] is True
        assert step["attainment"] == pytest.approx(0.1)

    def test_render_marks_empty_steps(self):
        schedule = make_schedule(rates=(10.0, 20.0))
        text = build_report(
            [outcome(0, 0.0, 0.0, 0.01, "ok")], schedule
        ).render()
        assert "n/a" in text  # step 1 served nothing — never a fake 0.00


class TestSloGate:
    def test_passes_when_within_slo(self):
        schedule = make_schedule()
        outcomes = [
            outcome(0, i * 0.1, i * 0.1, i * 0.1 + 0.005, "ok")
            for i in range(10)
        ]
        report = build_report(outcomes, schedule)
        passed, failures = SloGate(p99_ms=50.0, attainment=0.99).evaluate(
            report.steps
        )
        assert passed and failures == []

    def test_fails_on_slow_p99(self):
        schedule = make_schedule()
        outcomes = [
            outcome(0, i * 0.1, i * 0.1, i * 0.1 + 0.2, "ok") for i in range(10)
        ]
        report = build_report(outcomes, schedule)
        passed, failures = SloGate(p99_ms=50.0).evaluate(report.steps)
        assert not passed
        assert any("p99" in f for f in failures)

    def test_fails_on_attainment(self):
        schedule = make_schedule()
        outcomes = [outcome(0, 0.0, 0.0, 0.01, "ok")] + [
            outcome(0, i * 0.1, i * 0.1, i * 0.1, "shed") for i in range(1, 10)
        ]
        report = build_report(outcomes, schedule)
        passed, failures = SloGate(p99_ms=50.0, attainment=0.99).evaluate(
            report.steps
        )
        assert not passed
        assert any("attainment" in f for f in failures)

    def test_empty_sample_fails_not_passes(self):
        # THE regression gate: zero traffic must never read as p99 == 0.
        schedule = make_schedule()
        report = build_report([], schedule)
        passed, failures = SloGate(p99_ms=1000.0, attainment=0.01).evaluate(
            report.steps
        )
        assert not passed
        assert any("no latency data" in f for f in failures)

    def test_zero_offered_queries_fails(self):
        gate = SloGate(p99_ms=100.0)
        passed, failures = gate.evaluate([])
        assert not passed

    def test_at_rate_pins_one_step(self):
        schedule = make_schedule(rates=(10.0, 20.0))
        outcomes = [
            outcome(0, i * 0.1, i * 0.1, i * 0.1 + 0.005, "ok")
            for i in range(10)
        ]  # step 1 gets nothing
        report = build_report(outcomes, schedule)
        passed, _ = SloGate(
            p99_ms=50.0, attainment=0.99, at_rate=10.0
        ).evaluate(report.steps)
        assert passed
        passed, failures = SloGate(p99_ms=50.0, at_rate=20.0).evaluate(
            report.steps
        )
        assert not passed
        passed, failures = SloGate(p99_ms=50.0, at_rate=999.0).evaluate(
            report.steps
        )
        assert not passed and "no step offers" in failures[0]

    def test_gate_validation(self):
        with pytest.raises(ValidationError):
            SloGate(p99_ms=0.0)
        with pytest.raises(ValidationError):
            SloGate(p99_ms=10.0, attainment=0.0)
