"""GatewayTarget resilience: half-closed pools, endpoint failover."""

from __future__ import annotations

import asyncio
import socket

import numpy as np
import pytest

from repro import Dataset, Mutation, Query, ShardedQueryService
from repro.loadgen import GatewayTarget
from repro.service import AsyncGateway

QUERY = Query([0, 2, 4], [0.7, 0.3, 0.5])


def make_dataset(n=60, m=6, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


def free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestHalfClosedPool:
    def test_idempotent_query_retries_once_on_fresh_connection(self):
        service = ShardedQueryService(make_dataset(), n_shards=2)
        port = free_port()

        async def main():
            gateway = AsyncGateway(service, k=5)
            await gateway.start("127.0.0.1", port)
            target = GatewayTarget("127.0.0.1", port, k=5)
            try:
                outcome, _, _ = await target.query(QUERY)
                assert outcome == "ok"
                assert len(target._idle) == 1  # connection went back idle
                # Server restart: every pooled connection is now dead.
                await gateway.stop()
                gateway2 = AsyncGateway(service, k=5)
                await gateway2.start("127.0.0.1", port)
                try:
                    outcome, _, detail = await target.query(QUERY)
                    assert outcome == "ok", detail
                    assert target.reconnects == 1
                finally:
                    await gateway2.stop()
            finally:
                await target.close()

        try:
            asyncio.run(main())
        finally:
            service.close()

    def test_mutation_never_auto_retries(self):
        service = ShardedQueryService(make_dataset(), n_shards=2)
        port = free_port()

        async def main():
            gateway = AsyncGateway(service, k=5)
            await gateway.start("127.0.0.1", port)
            target = GatewayTarget("127.0.0.1", port, k=5)
            try:
                outcome, _, _ = await target.query(QUERY)
                assert outcome == "ok"
                await gateway.stop()
                gateway2 = AsyncGateway(service, k=5)
                await gateway2.start("127.0.0.1", port)
                try:
                    outcome, detail = await target.mutate(
                        Mutation.update(3, 1, 0.5)
                    )
                    # The pooled connection was dead and a write is not
                    # idempotent: it must surface the error, not retry.
                    assert outcome == "error"
                    assert target.reconnects == 0
                finally:
                    await gateway2.stop()
            finally:
                await target.close()

        try:
            asyncio.run(main())
        finally:
            service.close()

    def test_fresh_connection_failure_still_surfaces(self):
        port = free_port()  # nothing listens here
        target = GatewayTarget("127.0.0.1", port, k=5)

        async def main():
            outcome, _, detail = await target.query(QUERY)
            assert outcome == "error"
            assert target.reconnects == 0
            await target.close()

        asyncio.run(main())


class TestEndpointFailover:
    def test_rotates_past_dead_endpoint(self):
        service = ShardedQueryService(make_dataset(), n_shards=2)
        dead = free_port()

        async def main():
            gateway = AsyncGateway(service, k=5)
            _, live = await gateway.start("127.0.0.1", 0)
            target = GatewayTarget(
                "127.0.0.1",
                dead,
                k=5,
                endpoints=[("127.0.0.1", dead), ("127.0.0.1", live)],
            )
            try:
                outcome, _, detail = await target.query(QUERY)
                assert outcome == "ok", detail
                assert target.failovers == 1
                # Later connections stick to the endpoint that worked.
                outcome, _, _ = await target.query(QUERY)
                assert outcome == "ok"
                assert target.failovers == 1
            finally:
                await target.close()
                await gateway.stop()

        try:
            asyncio.run(main())
        finally:
            service.close()

    def test_all_endpoints_dead_is_an_error(self):
        target = GatewayTarget(
            "127.0.0.1",
            1,
            endpoints=[("127.0.0.1", free_port()), ("127.0.0.1", free_port())],
        )

        async def main():
            outcome, _, detail = await target.query(QUERY)
            assert outcome == "error"
            assert "no endpoint reachable" in detail
            await target.close()

        asyncio.run(main())
