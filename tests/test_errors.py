"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.errors import (
    AlgorithmError,
    DatasetError,
    GeometryError,
    QueryError,
    ReproError,
    StorageError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ValidationError, DatasetError, QueryError, StorageError,
         GeometryError, AlgorithmError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize("exc", [ValidationError, DatasetError, QueryError])
    def test_validation_family_is_value_error(self, exc):
        """Input-validation failures stay catchable as plain ValueError."""
        assert issubclass(exc, ValueError)

    def test_single_except_catches_everything(self):
        for exc in (DatasetError, QueryError, StorageError, GeometryError,
                    AlgorithmError):
            with pytest.raises(ReproError):
                raise exc("boom")

    def test_library_raises_its_own_types(self):
        """Spot-check that public entry points raise from the hierarchy."""
        import repro

        with pytest.raises(QueryError):
            repro.Query([], [])
        with pytest.raises(DatasetError):
            repro.Dataset.from_dense([[2.0]])
        data = repro.Dataset.from_dense([[0.5]])
        with pytest.raises(StorageError):
            repro.InvertedIndex(data).list_for(5)
