"""Tests for the fused cross-query kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, InvertedIndex, Query, brute_force_topk
from repro.kernels.batch import fused_scores, fused_topk, partition_counts_many
from repro.storage.plan import SubspacePlan

from ..conftest import random_sparse_dataset


@pytest.fixture()
def case():
    rng = np.random.default_rng(42)
    data = random_sparse_dataset(rng, n_tuples=80, n_dims=7, density=0.6)
    dims = [0, 2, 5]
    plan = SubspacePlan(InvertedIndex(data), dims)
    queries = [Query(dims, rng.uniform(0.1, 1.0, size=3)) for _ in range(9)]
    return data, plan, queries


class TestFusedScores:
    def test_bit_identical_to_query_score(self, case):
        data, plan, queries = case
        weights = np.stack([q.weights for q in queries])
        scores = fused_scores(plan.block, weights)
        assert scores.shape == (len(queries), data.n_tuples)
        for qi, query in enumerate(queries):
            for tid in range(data.n_tuples):
                expected = query.score(data.values_at(tid, query.dims))
                assert scores[qi, tid] == expected  # bitwise, not approx

    def test_single_query_row(self, case):
        _, plan, queries = case
        one = fused_scores(plan.block, queries[0].weights)
        many = fused_scores(plan.block, np.stack([q.weights for q in queries]))
        assert np.array_equal(one[0], many[0])


class TestFusedTopK:
    def test_matches_brute_force_topk(self, case):
        data, plan, queries = case
        scores = fused_scores(plan.block, np.stack([q.weights for q in queries]))
        for k in (1, 3, 10):
            tops = fused_topk(scores, k)
            for query, top in zip(queries, tops):
                oracle = brute_force_topk(data, query, k)
                assert top.ids.tolist() == oracle.ids
                assert not top.boundary_tie

    def test_fewer_positive_than_k(self):
        data = Dataset.from_dense([[0.5, 0.0], [0.0, 0.0], [0.2, 0.0]])
        plan = SubspacePlan(InvertedIndex(data), [0])
        scores = fused_scores(plan.block, np.asarray([[0.8]]))
        (top,) = fused_topk(scores, 5)
        assert top.ids.tolist() == [0, 2]  # only positive-score tuples
        assert top.n_positive == 2

    def test_no_positive_scores_gives_empty_result(self):
        data = Dataset.from_dense([[0.0, 0.4], [0.0, 0.1]])
        plan = SubspacePlan(InvertedIndex(data), [0])
        scores = fused_scores(plan.block, np.asarray([[0.8]]))
        (top,) = fused_topk(scores, 2)
        assert top.ids.size == 0 and top.n_positive == 0

    def test_boundary_tie_detected(self):
        # Tuples 1 and 2 tie bit-exactly at the k boundary.
        data = Dataset.from_dense([[0.9], [0.5], [0.5], [0.1]])
        plan = SubspacePlan(InvertedIndex(data), [0])
        scores = fused_scores(plan.block, np.asarray([[0.7]]))
        (top,) = fused_topk(scores, 2)
        assert top.boundary_tie

    def test_internal_tie_is_not_flagged(self):
        # The tied pair fits entirely inside the top-k: order is by id,
        # no encounter-dependence, no fallback needed.
        data = Dataset.from_dense([[0.9], [0.5], [0.5], [0.1]])
        plan = SubspacePlan(InvertedIndex(data), [0])
        scores = fused_scores(plan.block, np.asarray([[0.7]]))
        (top,) = fused_topk(scores, 3)
        assert not top.boundary_tie
        assert top.ids.tolist() == [0, 1, 2]


class TestPartitionCounts:
    def test_counts_match_definition(self):
        data = Dataset.from_dense(
            [[0.5, 0.3], [0.4, 0.0], [0.0, 0.2], [0.6, 0.1], [0.0, 0.0]]
        )
        plan = SubspacePlan(InvertedIndex(data), [0, 1])
        scores = fused_scores(plan.block, np.asarray([[0.5, 0.5]]))
        tops = fused_topk(scores, 2)  # R = {0, 3} (scores .4, .35)
        ((candidates_total, cl_union),) = partition_counts_many(
            plan.nnz_rows, plan.nnz_ge2_total, tops
        )
        assert tops[0].ids.tolist() == [0, 3]
        assert candidates_total == 2  # tuples 1 and 2; tuple 4 scores zero
        assert cl_union == 0  # both remaining candidates have 1 nnz
