"""Tests for the repro.kernels array-kernel package."""
