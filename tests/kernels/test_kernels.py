"""Unit tests for the array kernels against their scalar counterparts.

Every kernel promises *bit-identical* results to the scalar reference
operations it replaces, so these tests use exact equality throughout —
``pytest.approx`` would hide precisely the class of bug (re-associated
sums, fused operations) that breaks backend parity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Query
from repro.core.lemma1 import crossing_delta
from repro.geometry.line import Line
from repro.kernels import (
    accumulate_scores,
    adjacent_crossings,
    batch_crossings,
    batch_pair_crossings,
    first_max_index,
    first_min_index,
    gather_columns,
    partition_masks,
)


@pytest.fixture()
def random_dataset():
    rng = np.random.default_rng(11)
    dense = rng.random((60, 8)) * (rng.random((60, 8)) < 0.6)
    return Dataset.from_dense(dense)


class TestScoringKernels:
    def test_gather_matches_values_at_exactly(self, random_dataset):
        dims = np.array([0, 3, 5, 7])
        ids = np.arange(random_dataset.n_tuples)
        matrix = gather_columns(random_dataset, ids, dims)
        for tid in ids:
            assert np.array_equal(matrix[tid], random_dataset.values_at(tid, dims))

    def test_gather_empty_batch(self, random_dataset):
        matrix = gather_columns(random_dataset, np.empty(0, np.int64), np.array([0, 1]))
        assert matrix.shape == (0, 2)

    def test_gather_missing_dimension_reads_zero(self):
        data = Dataset.from_dense([[0.5, 0.0], [0.0, 0.7]])
        matrix = gather_columns(data, np.array([0, 1]), np.array([0, 1]))
        assert matrix[0, 1] == 0.0 and matrix[1, 0] == 0.0

    def test_accumulate_matches_ordered_scalar_sum(self, random_dataset):
        dims = np.array([1, 2, 4])
        weights = np.array([0.7, 0.2, 0.55])
        ids = np.arange(random_dataset.n_tuples)
        matrix = gather_columns(random_dataset, ids, dims)
        scores = accumulate_scores(matrix, weights)
        for tid in ids:
            expected = 0.0
            for j in range(dims.size):
                expected += float(weights[j]) * float(matrix[tid, j])
            assert scores[tid] == expected  # bit-identical, not approx


class TestPartitionMasks:
    def test_masks_reproduce_scalar_classification(self):
        coords = np.array(
            [
                [0.0, 0.5, 0.0],  # zero in j=0, non-zero elsewhere -> C0
                [0.3, 0.0, 0.0],  # only j=0 non-zero -> CH
                [0.2, 0.1, 0.0],  # j=0 and another -> CL
                [0.0, 0.0, 0.0],  # all-zero row -> C0 for every j
            ]
        )
        c0, ch, cl = partition_masks(coords, 0)
        assert c0.tolist() == [True, False, False, True]
        assert ch.tolist() == [False, True, False, False]
        assert cl.tolist() == [False, False, True, False]

    def test_masks_are_disjoint_and_complete(self):
        rng = np.random.default_rng(3)
        coords = rng.random((40, 4)) * (rng.random((40, 4)) < 0.5)
        for j in range(4):
            c0, ch, cl = partition_masks(coords, j)
            combined = c0.astype(int) + ch.astype(int) + cl.astype(int)
            assert (combined == 1).all()


class TestConstraintKernels:
    def test_batch_crossings_match_crossing_delta(self):
        rng = np.random.default_rng(5)
        scores = rng.uniform(0.0, 0.5, 30)
        coords = rng.random(30)
        deltas, denoms = batch_crossings(0.8, 0.4, scores, coords)
        for i in range(30):
            if denoms[i] != 0.0:
                assert deltas[i] == crossing_delta(0.8, 0.4, scores[i], coords[i])

    def test_batch_pair_crossings_align_pairs(self):
        ahead_s = np.array([0.9, 0.8])
        ahead_c = np.array([0.2, 0.6])
        behind_s = np.array([0.7, 0.75])
        behind_c = np.array([0.5, 0.1])
        deltas, denoms = batch_pair_crossings(ahead_s, ahead_c, behind_s, behind_c)
        assert deltas[0] == crossing_delta(0.9, 0.2, 0.7, 0.5)
        assert deltas[1] == crossing_delta(0.8, 0.6, 0.75, 0.1)
        assert denoms[0] > 0.0 and denoms[1] < 0.0

    def test_first_extremal_indices_break_ties_on_first_occurrence(self):
        values = np.array([3.0, 1.0, 1.0, 2.0, 5.0])
        mask = np.array([True, True, True, True, False])
        assert first_min_index(values, mask) == 1
        assert first_max_index(values, mask) == 0
        values = np.array([2.0, 5.0, 5.0])
        mask = np.ones(3, dtype=bool)
        assert first_max_index(values, mask) == 1

    def test_first_extremal_indices_empty_mask(self):
        values = np.array([1.0, 2.0])
        mask = np.zeros(2, dtype=bool)
        assert first_min_index(values, mask) is None
        assert first_max_index(values, mask) is None


class TestEventKernel:
    def test_adjacent_crossings_replay_overtakes_at(self):
        rng = np.random.default_rng(9)
        lines = [
            Line(i, float(v), float(s))
            for i, (v, s) in enumerate(zip(rng.random(25), rng.random(25)))
        ]
        order = sorted(lines, key=lambda l: l.sort_key(0.0))
        boundary = 0.8
        intercepts = np.array([l.intercept for l in order])
        slopes = np.array([l.slope for l in order])
        positions, xs = adjacent_crossings(intercepts, slopes, 0.0, boundary)
        expected = {}
        for pos in range(len(order) - 1):
            x = order[pos + 1].overtakes_at(order[pos])
            if x is not None and x < boundary:
                expected[pos] = max(x, 0.0)
        assert dict(zip(positions.tolist(), xs.tolist())) == expected

    def test_single_line_has_no_crossings(self):
        positions, xs = adjacent_crossings(np.array([1.0]), np.array([0.5]), 0.0, 1.0)
        assert positions.size == 0 and xs.size == 0
