"""Kinetic k-level sweep tests, cross-checked against dense re-ranking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import Line, sweep_topk_events


def rank_ids(lines, k, x):
    """Top-k ids at x by direct evaluation (library tie-break)."""
    ordered = sorted(lines, key=lambda l: l.sort_key(x))
    return tuple(line.tuple_id for line in ordered[:k])


class TestBasicSweep:
    def test_no_events_for_parallel_lines(self):
        lines = [Line(1, 0.9, 0.5), Line(2, 0.5, 0.5)]
        result = sweep_topk_events(lines, 1, 1.0)
        assert result.events == []
        assert result.initial_topk == (1,)
        assert result.x_stop == 1.0

    def test_single_composition_event(self):
        upper = Line(1, 0.9, 0.0)
        riser = Line(2, 0.5, 1.0)
        result = sweep_topk_events([upper, riser], 1, 1.0)
        assert len(result.events) == 1
        event = result.events[0]
        assert event.kind == "composition"
        assert event.x == pytest.approx(0.4)
        assert event.rising_id == 2 and event.falling_id == 1
        assert event.topk_after == (2,)

    def test_reorder_event_inside_topk(self):
        a = Line(1, 0.9, 0.0)
        b = Line(2, 0.5, 1.0)
        result = sweep_topk_events([a, b], 2, 1.0)
        assert len(result.events) == 1
        assert result.events[0].kind == "reorder"
        assert result.events[0].topk_after == (2, 1)

    def test_event_beyond_xmax_ignored(self):
        a = Line(1, 0.9, 0.0)
        b = Line(2, 0.5, 1.0)
        result = sweep_topk_events([a, b], 1, 0.3)
        assert result.events == []

    def test_swap_below_topk_not_emitted(self):
        lines = [
            Line(1, 1.0, 0.0),
            Line(2, 0.5, 0.0),
            Line(3, 0.4, 0.3),  # crosses line 2 below the top-1
        ]
        result = sweep_topk_events(lines, 1, 1.0)
        assert result.events == []

    def test_count_reorderings_false_suppresses_reorders(self):
        a = Line(1, 0.9, 0.0)
        b = Line(2, 0.5, 1.0)
        result = sweep_topk_events([a, b], 2, 1.0, count_reorderings=False)
        assert result.events == []

    def test_composition_still_counted_without_reorders(self):
        lines = [Line(1, 0.9, 0.2), Line(2, 0.8, 0.1), Line(3, 0.2, 1.0)]
        result = sweep_topk_events(lines, 2, 1.0, count_reorderings=False)
        assert all(e.kind == "composition" for e in result.events)
        assert len(result.events) == 1  # line 3 entering over line 2


class TestQuota:
    def test_max_events_truncates(self):
        # Distinct crossings: 2 over 1 at x=0.4, then 3 over 2 at x=1.0.
        lines = [Line(1, 0.9, 0.0), Line(2, 0.7, 0.5), Line(3, 0.2, 1.0)]
        full = sweep_topk_events(lines, 1, 2.0)
        truncated = sweep_topk_events(lines, 1, 2.0, max_events=1)
        assert len(full.events) == 2
        assert len(truncated.events) == 1
        assert truncated.truncated
        assert truncated.x_stop == truncated.events[-1].x

    def test_klevel_domain_ends_at_stop(self):
        lines = [Line(1, 0.9, 0.0), Line(2, 0.7, 0.5), Line(3, 0.2, 1.0)]
        truncated = sweep_topk_events(lines, 1, 2.0, max_events=1)
        assert truncated.klevel.x_hi == pytest.approx(truncated.x_stop)

    def test_concurrent_crossings_collapse_to_one_change(self):
        # All three lines meet at x = 0.6; the top-1 flips 1 -> 3 directly,
        # so exactly one composition event is semantically correct.
        lines = [Line(1, 0.9, 0.0), Line(2, 0.6, 0.5), Line(3, 0.3, 1.0)]
        result = sweep_topk_events(lines, 1, 2.0)
        assert len(result.events) == 1
        assert result.events[0].topk_after == (3,)


class TestKLevel:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_klevel_matches_kth_value(self, seed, k):
        rng = np.random.default_rng(seed)
        lines = [
            Line(i, float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
            for i in range(9)
        ]
        result = sweep_topk_events(lines, k, 1.5)
        for x in np.linspace(0.0, 1.5, 31):
            values = sorted((l.value_at(float(x)) for l in lines), reverse=True)
            assert result.klevel.value_at(float(x)) == pytest.approx(
                values[k - 1], abs=1e-9
            )


class TestEventsAgainstDenseRanking:
    @pytest.mark.parametrize("seed", range(12))
    def test_topk_after_matches_reranking(self, seed):
        rng = np.random.default_rng(200 + seed)
        lines = [
            Line(i, float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
            for i in range(10)
        ]
        k = int(rng.integers(1, 5))
        result = sweep_topk_events(lines, k, 1.0)
        xs = [e.x for e in result.events]
        assert xs == sorted(xs)
        for event, next_x in zip(result.events, xs[1:] + [1.0]):
            midpoint = (event.x + next_x) / 2.0
            assert event.topk_after == rank_ids(lines, k, midpoint)

    @pytest.mark.parametrize("seed", range(6))
    def test_event_count_complete(self, seed):
        """Every change visible in a dense x-scan appears as an event."""
        rng = np.random.default_rng(400 + seed)
        lines = [
            Line(i, float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
            for i in range(8)
        ]
        k = 3
        result = sweep_topk_events(lines, k, 1.0)
        previous = rank_ids(lines, k, 0.0)
        changes = 0
        for x in np.linspace(1e-9, 1.0, 2001):
            current = rank_ids(lines, k, float(x))
            if current != previous:
                changes += 1
                previous = current
        # The dense scan may merge events closer than its step; the sweep
        # can only find at least as many.
        assert len(result.events) >= changes


class TestValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(GeometryError):
            sweep_topk_events([Line(1, 0.5, 0.0), Line(1, 0.4, 0.1)], 1, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            sweep_topk_events([], 1, 1.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(Exception):
            sweep_topk_events([Line(1, 0.5, 0.0)], 1, 0.0)

    def test_k_capped_at_line_count(self):
        result = sweep_topk_events([Line(1, 0.5, 0.0)], 5, 1.0)
        assert result.initial_topk == (1,)
