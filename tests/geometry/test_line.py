"""Unit tests for Line in score-coordinate space."""

from __future__ import annotations

import pytest

from repro.geometry import Line


class TestLineBasics:
    def test_value_at(self):
        line = Line(1, 0.5, 0.2)
        assert line.value_at(0.0) == pytest.approx(0.5)
        assert line.value_at(2.0) == pytest.approx(0.9)
        assert line.value_at(-1.0) == pytest.approx(0.3)

    def test_mirrored_negates_slope(self):
        line = Line(1, 0.5, 0.2).mirrored()
        assert line.slope == pytest.approx(-0.2)
        assert line.intercept == pytest.approx(0.5)
        assert line.tuple_id == 1

    def test_double_mirror_is_identity(self):
        line = Line(1, 0.5, 0.2)
        assert line.mirrored().mirrored() == line


class TestIntersection:
    def test_intersection_x(self):
        a = Line(1, 1.0, 0.0)
        b = Line(2, 0.0, 0.5)
        assert a.intersection_x(b) == pytest.approx(2.0)
        assert b.intersection_x(a) == pytest.approx(2.0)

    def test_parallel_returns_none(self):
        assert Line(1, 1.0, 0.3).intersection_x(Line(2, 0.5, 0.3)) is None

    def test_coincident_returns_none(self):
        assert Line(1, 1.0, 0.3).intersection_x(Line(2, 1.0, 0.3)) is None

    def test_overtakes_at_requires_steeper_slope(self):
        lower = Line(1, 0.0, 0.5)
        upper = Line(2, 1.0, 0.1)
        assert lower.overtakes_at(upper) == pytest.approx(2.5)
        # The flat line never overtakes the steep one from below.
        assert upper.overtakes_at(lower) is None

    def test_equal_slopes_never_overtake(self):
        assert Line(1, 0.0, 0.5).overtakes_at(Line(2, 1.0, 0.5)) is None


class TestSortKey:
    def test_orders_by_value_desc(self):
        a, b = Line(1, 0.9, 0.0), Line(2, 0.5, 0.0)
        assert a.sort_key(0.0) < b.sort_key(0.0)

    def test_value_tie_orders_by_slope_desc(self):
        steep, flat = Line(1, 0.5, 0.9), Line(2, 0.5, 0.1)
        assert steep.sort_key(0.0) < flat.sort_key(0.0)

    def test_full_tie_orders_by_id(self):
        a, b = Line(1, 0.5, 0.5), Line(2, 0.5, 0.5)
        assert a.sort_key(0.0) < b.sort_key(0.0)

    def test_key_respects_position(self):
        steep, flat = Line(1, 0.0, 1.0), Line(2, 0.5, 0.0)
        assert flat.sort_key(0.0) < steep.sort_key(0.0)
        assert steep.sort_key(1.0) < flat.sort_key(1.0)
