"""Tests for half-space utilities and the qhull validity polytope."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.halfspace import (
    axis_exit_distance,
    halfspace_distance,
    validity_polytope_2d,
)


class TestHalfspaceDistance:
    def test_simple_distance(self):
        q = np.array([1.0, 0.0])
        ahead = np.array([1.0, 0.0])
        behind = np.array([0.0, 0.0])
        # Normal (1, 0); margin 1; ||normal|| = 1.
        assert halfspace_distance(q, ahead, behind) == pytest.approx(1.0)

    def test_diagonal_normal(self):
        q = np.array([0.5, 0.5])
        ahead = np.array([1.0, 1.0])
        behind = np.array([0.0, 0.0])
        assert halfspace_distance(q, ahead, behind) == pytest.approx(
            1.0 / np.sqrt(2.0)
        )

    def test_identical_tuples_give_inf(self):
        q = np.array([0.3, 0.7])
        row = np.array([0.5, 0.5])
        assert halfspace_distance(q, row, row) == float("inf")

    def test_wrong_order_rejected(self):
        q = np.array([1.0, 0.0])
        ahead = np.array([0.0, 0.0])
        behind = np.array([1.0, 0.0])
        with pytest.raises(GeometryError):
            halfspace_distance(q, ahead, behind)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(Exception):
            halfspace_distance(np.array([1.0]), np.array([1.0, 0.0]), np.array([0.0]))


class TestAxisExitDistance:
    def test_unconstrained_hits_box(self):
        q = np.array([0.3, 0.5])
        assert axis_exit_distance(q, [], dim=0, direction=1) == pytest.approx(0.7)
        assert axis_exit_distance(q, [], dim=0, direction=-1) == pytest.approx(0.3)

    def test_constraint_binds(self):
        q = np.array([0.5, 0.5])
        # Constraint: -q0 + q1 >= 0, i.e. q0 <= q1; moving +e0 exits at t=0.
        normal = np.array([-1.0, 1.0])
        assert axis_exit_distance(q, [normal], dim=0, direction=1) == pytest.approx(0.0)
        # Moving -e0 only increases the margin: box limit applies.
        assert axis_exit_distance(q, [normal], dim=0, direction=-1) == pytest.approx(0.5)

    def test_violated_constraint_rejected(self):
        q = np.array([0.5, 0.2])
        normal = np.array([-1.0, 1.0])  # margin -0.3 at q
        with pytest.raises(GeometryError):
            axis_exit_distance(q, [normal], dim=0, direction=1)

    def test_bad_direction_rejected(self):
        with pytest.raises(Exception):
            axis_exit_distance(np.array([0.5]), [], dim=0, direction=0)


class TestValidityPolytope2D:
    def test_unconstrained_is_unit_box(self):
        vertices = validity_polytope_2d(np.array([0.5, 0.5]), [])
        assert len(vertices) == 4
        xs = sorted(v[0] for v in vertices)
        ys = sorted(v[1] for v in vertices)
        assert xs[0] == pytest.approx(0.0) and xs[-1] == pytest.approx(1.0)
        assert ys[0] == pytest.approx(0.0) and ys[-1] == pytest.approx(1.0)

    def test_halfplane_cuts_box(self):
        # q0 >= q1 keeps the lower-right triangle.
        vertices = validity_polytope_2d(np.array([0.7, 0.3]), [np.array([1.0, -1.0])])
        for x, y in vertices:
            assert x >= y - 1e-9

    def test_axis_exit_matches_polytope_edge(self):
        q = np.array([0.6, 0.4])
        normals = [np.array([1.0, -0.5])]  # q0 >= 0.5*q1
        exit_left = axis_exit_distance(q, normals, dim=0, direction=-1)
        vertices = validity_polytope_2d(q, normals)
        # Walking left from q, the polytope boundary is at q0 - exit_left.
        boundary_x = q[0] - exit_left
        min_x_at_qy = min(
            x for x, y in vertices if abs(y - q[1]) < 0.5
        )  # loose check: boundary not left of polytope's min x
        assert boundary_x >= min_x_at_qy - 1e-9

    def test_query_must_be_2d(self):
        with pytest.raises(Exception):
            validity_polytope_2d(np.array([0.5, 0.5, 0.5]), [])

    def test_boundary_query_still_works(self):
        # q exactly on a constraint boundary: the polytope is still
        # full-dimensional, so a nudged interior point must succeed.
        vertices = validity_polytope_2d(np.array([0.5, 0.5]), [np.array([1.0, -1.0])])
        assert len(vertices) >= 3

    def test_degenerate_polytope_rejected(self):
        # Opposing half-planes force q0 == q1: no full-dimensional interior.
        with pytest.raises(GeometryError):
            validity_polytope_2d(
                np.array([0.5, 0.5]),
                [np.array([1.0, -1.0]), np.array([-1.0, 1.0])],
            )
