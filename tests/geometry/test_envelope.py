"""Unit tests for lower/upper envelopes, cross-checked against naive min/max."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import Envelope, EnvelopeSegment, Line, lower_envelope, upper_envelope


def naive_extreme(lines, x, lower):
    values = [line.value_at(x) for line in lines]
    return min(values) if lower else max(values)


class TestLowerEnvelope:
    def test_single_line(self):
        env = lower_envelope([Line(1, 0.5, 0.2)], 0.0, 1.0)
        assert len(env) == 1
        assert env.value_at(0.7) == pytest.approx(0.5 + 0.7 * 0.2)

    def test_two_crossing_lines(self):
        flat = Line(1, 0.5, 0.0)
        steep = Line(2, 0.0, 1.0)
        env = lower_envelope([flat, steep], 0.0, 1.0)
        # steep is lower before x=0.5, flat after.
        assert env.value_at(0.2) == pytest.approx(0.2)
        assert env.value_at(0.8) == pytest.approx(0.5)
        assert len(env) == 2

    def test_dominated_line_absent(self):
        low = Line(1, 0.1, 0.1)
        high = Line(2, 0.9, 0.1)  # parallel, always above
        env = lower_envelope([low, high], 0.0, 1.0)
        assert all(seg.line.tuple_id == 1 for seg in env.segments)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_naive_min(self, seed):
        rng = np.random.default_rng(seed)
        lines = [
            Line(i, float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
            for i in range(12)
        ]
        env = lower_envelope(lines, 0.0, 2.0)
        for x in np.linspace(0.0, 2.0, 41):
            assert env.value_at(float(x)) == pytest.approx(
                naive_extreme(lines, float(x), lower=True), abs=1e-12
            )

    def test_domain_endpoints_exact(self):
        env = lower_envelope([Line(1, 0.5, 0.3)], 0.25, 0.75)
        assert env.x_lo == 0.25
        assert env.x_hi == 0.75


class TestUpperEnvelope:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_naive_max(self, seed):
        rng = np.random.default_rng(100 + seed)
        lines = [
            Line(i, float(rng.uniform(0, 1)), float(rng.uniform(-1, 1)))
            for i in range(10)
        ]
        env = upper_envelope(lines, -1.0, 1.0)
        for x in np.linspace(-1.0, 1.0, 41):
            assert env.value_at(float(x)) == pytest.approx(
                naive_extreme(lines, float(x), lower=False), abs=1e-12
            )


class TestEnvelopeQueries:
    def test_value_outside_domain_rejected(self):
        env = lower_envelope([Line(1, 0.5, 0.0)], 0.0, 1.0)
        with pytest.raises(GeometryError):
            env.value_at(1.5)

    def test_segment_at_breakpoint(self):
        flat = Line(1, 0.5, 0.0)
        steep = Line(2, 0.0, 1.0)
        env = lower_envelope([flat, steep], 0.0, 1.0)
        segment = env.segment_at(0.5)
        assert segment.x_start <= 0.5 <= segment.x_end

    def test_breakpoints_sorted(self):
        rng = np.random.default_rng(3)
        lines = [Line(i, float(rng.random()), float(rng.random())) for i in range(8)]
        env = lower_envelope(lines, 0.0, 1.0)
        points = env.breakpoints
        assert points == sorted(points)
        assert points[0] == 0.0 and points[-1] == 1.0

    def test_line_stays_below_true(self):
        env = lower_envelope([Line(1, 1.0, 0.0)], 0.0, 1.0)
        assert env.line_stays_below(Line(9, 0.5, 0.2))

    def test_line_stays_below_false_on_crossing(self):
        env = lower_envelope([Line(1, 1.0, 0.0)], 0.0, 1.0)
        assert not env.line_stays_below(Line(9, 0.5, 0.8))

    def test_line_touching_counts_as_not_below(self):
        env = lower_envelope([Line(1, 1.0, 0.0)], 0.0, 1.0)
        assert not env.line_stays_below(Line(9, 0.0, 1.0))

    def test_vectorized_check_matches_per_breakpoint_loop(self):
        rng = np.random.default_rng(11)
        lines = [Line(i, float(rng.random()), float(rng.random())) for i in range(12)]
        env = lower_envelope(lines, -0.5, 1.5)
        for _ in range(50):
            probe = Line(99, float(rng.random() * 1.5 - 0.25), float(rng.random()))
            expected = all(
                probe.value_at(x) < env.value_at(x) for x in env.breakpoints
            )
            assert env.line_stays_below(probe) == expected

    def test_breakpoint_cache_built_once_and_exact(self):
        rng = np.random.default_rng(12)
        lines = [Line(i, float(rng.random()), float(rng.random())) for i in range(6)]
        env = lower_envelope(lines, 0.0, 1.0)
        env.line_stays_below(Line(9, 0.1, 0.1))
        xs, values = env._breakpoint_values()
        assert xs.tolist() == env.breakpoints
        assert values.tolist() == [env.value_at(float(x)) for x in xs]
        assert env._breakpoint_values()[0] is xs  # cached, not rebuilt


class TestEnvelopeValidation:
    def test_empty_rejected(self):
        with pytest.raises(Exception):
            lower_envelope([], 0.0, 1.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(Exception):
            lower_envelope([Line(1, 0.5, 0.0)], 1.0, 0.0)

    def test_non_contiguous_segments_rejected(self):
        segs = [
            EnvelopeSegment(0.0, 0.4, Line(1, 0.5, 0.0)),
            EnvelopeSegment(0.5, 1.0, Line(2, 0.5, 0.0)),
        ]
        with pytest.raises(GeometryError):
            Envelope(segs, "lower")

    def test_bad_kind_rejected(self):
        segs = [EnvelopeSegment(0.0, 1.0, Line(1, 0.5, 0.0))]
        with pytest.raises(Exception):
            Envelope(segs, "sideways")
