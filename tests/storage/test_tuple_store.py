"""Unit tests for the tuple store's I/O accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Query
from repro.metrics import AccessCounters
from repro.storage import TupleStore


@pytest.fixture()
def store_setup():
    data = Dataset.from_dense([[0.5, 0.0, 0.3], [0.1, 0.9, 0.0]])
    counters = AccessCounters()
    return data, counters, TupleStore(data, counters)


class TestCharging:
    def test_fetch_charges_one_random_access(self, store_setup):
        _, counters, store = store_setup
        store.fetch(0, np.array([0, 2]))
        assert counters.random_accesses == 1

    def test_fetch_value_charges(self, store_setup):
        _, counters, store = store_setup
        assert store.fetch_value(0, 2) == pytest.approx(0.3)
        assert counters.random_accesses == 1

    def test_repeated_fetches_charge_again_without_cache(self, store_setup):
        _, counters, store = store_setup
        store.fetch_value(0, 0)
        store.fetch_value(0, 0)
        assert counters.random_accesses == 2

    def test_score_fetches_once(self, store_setup):
        _, counters, store = store_setup
        query = Query([0, 2], [0.5, 0.5])
        score = store.score(0, query)
        assert score == pytest.approx(0.5 * 0.5 + 0.5 * 0.3)
        assert counters.random_accesses == 1

    def test_peek_is_free(self, store_setup):
        _, counters, store = store_setup
        assert store.peek_value(1, 1) == pytest.approx(0.9)
        store.peek_values(1, np.array([0, 1]))
        assert counters.random_accesses == 0


class TestRowCache:
    def test_cache_makes_repeats_free(self):
        data = Dataset.from_dense([[0.5, 0.2]])
        counters = AccessCounters()
        store = TupleStore(data, counters, cache_rows=True)
        store.fetch_value(0, 0)
        store.fetch_value(0, 1)
        store.fetch(0, np.array([0, 1]))
        assert counters.random_accesses == 1

    def test_cache_distinct_tuples_each_charge(self):
        data = Dataset.from_dense([[0.5], [0.7]])
        counters = AccessCounters()
        store = TupleStore(data, counters, cache_rows=True)
        store.fetch_value(0, 0)
        store.fetch_value(1, 0)
        assert counters.random_accesses == 2


class TestValues:
    def test_fetch_returns_correct_coordinates(self, store_setup):
        _, _, store = store_setup
        out = store.fetch(1, np.array([0, 1, 2]))
        assert out.tolist() == pytest.approx([0.1, 0.9, 0.0])
