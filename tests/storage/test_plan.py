"""Tests for SubspacePlan and its per-index LRU cache."""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro import Dataset, InvertedIndex, Query
from repro.errors import StorageError
from repro.storage.plan import SubspacePlan, SubspacePlanCache, signature_of

from ..conftest import random_sparse_dataset


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(77)
    return random_sparse_dataset(rng, n_tuples=50, n_dims=6, density=0.6)


@pytest.fixture()
def index(dataset):
    return InvertedIndex(dataset)


class TestSignature:
    def test_sorted_dims_accepted(self):
        assert signature_of([0, 3, 5]) == (0, 3, 5)
        assert signature_of(np.asarray([1, 2])) == (1, 2)

    def test_unsorted_or_duplicate_rejected(self):
        with pytest.raises(StorageError):
            signature_of([3, 0])
        with pytest.raises(StorageError):
            signature_of([1, 1])


class TestSubspacePlan:
    def test_block_rows_match_per_tuple_fetches(self, dataset, index):
        plan = SubspacePlan(index, [0, 2, 4])
        dims = np.asarray([0, 2, 4])
        for tid in range(dataset.n_tuples):
            expected = dataset.values_at(tid, dims)
            assert np.array_equal(plan.block[tid], expected)
        gathered = plan.rows(np.asarray([3, 1, 3]))
        assert np.array_equal(gathered[0], gathered[2])
        assert np.array_equal(gathered[1], dataset.values_at(1, dims))

    def test_columns_are_contiguous_and_exact(self, dataset, index):
        plan = SubspacePlan(index, [1, 3])
        for j_pos in (0, 1):
            column = plan.column(j_pos)
            assert column.flags["C_CONTIGUOUS"]
            assert np.array_equal(column, plan.block[:, j_pos])

    def test_rank_arrays_encode_lexsorted_probe_orders(self, dataset, index):
        plan = SubspacePlan(index, [0, 2])
        column = plan.column(1)
        ids = plan.all_ids
        asc = np.lexsort((ids, column + 0.0))
        desc = np.lexsort((ids, -(column + 0.0)))
        assert np.array_equal(np.argsort(plan.asc_rank(1)), asc)
        assert np.array_equal(np.argsort(plan.desc_rank(1)), desc)

    def test_plan_build_warms_lists_and_lookups(self, dataset, index):
        assert index.built_dimensions() == []
        SubspacePlan(index, [1, 4])
        assert index.built_dimensions() == [1, 4]
        # The id lookup behind position_of is prebuilt too.
        assert index.list_for(1)._lookup is not None

    def test_j_pos_validates_membership(self, dataset, index):
        plan = SubspacePlan(index, [0, 2])
        assert plan.j_pos(2) == 1
        with pytest.raises(StorageError):
            plan.j_pos(1)

    def test_nnz_counts(self, index):
        data = Dataset.from_dense(
            [[0.5, 0.0, 0.2], [0.0, 0.0, 0.9], [0.1, 0.3, 0.4], [0.0, 0.0, 0.0]]
        )
        plan = SubspacePlan(InvertedIndex(data), [0, 2])
        assert plan.nnz_rows.tolist() == [2, 1, 2, 0]
        assert plan.nnz_ge2_total == 2


class TestSubspacePlanCache:
    def test_plan_built_once_per_signature(self, index):
        cache = SubspacePlanCache(index)
        first = cache.plan_for([0, 2])
        again = cache.plan_for(np.asarray([0, 2]))
        other = cache.plan_for([1, 2])
        assert again is first
        assert other is not first
        stats = cache.stats()
        assert stats.builds == 2
        assert stats.hits == 1
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_lru_eviction(self, index):
        cache = SubspacePlanCache(index, capacity=2)
        a = cache.plan_for([0])
        cache.plan_for([1])
        cache.plan_for([0])  # refresh a
        cache.plan_for([2])  # evicts [1]
        assert [0] in cache and [2] in cache and [1] not in cache
        assert cache.plan_for([0]) is a
        assert cache.stats().evictions == 1

    def test_engine_compute_many_reuses_one_plan(self, dataset, index):
        from repro import ImmutableRegionEngine

        engine = ImmutableRegionEngine(index, method="cpt")
        rng = np.random.default_rng(5)
        queries = [Query([0, 2], rng.uniform(0.2, 0.9, size=2)) for _ in range(6)]
        engine.compute_many(queries, 4, topk_mode="matmul")
        stats = index.plans.stats()
        assert stats.builds == 1
        engine.compute_many(queries, 4, topk_mode="ta")
        assert index.plans.stats().builds == 1  # same signature, same plan

    def test_ta_mode_skips_plan_build_for_lone_cold_query(self, dataset, index):
        from repro import ImmutableRegionEngine

        engine = ImmutableRegionEngine(index, method="cpt")
        engine.compute_many([Query([0, 3], [0.5, 0.6])], 4, topk_mode="ta")
        assert index.plans.stats().builds == 0  # nothing to amortise
        engine.compute_many(
            [Query([0, 3], [0.5, 0.6]), Query([0, 3], [0.4, 0.7])],
            4,
            topk_mode="ta",
        )
        assert index.plans.stats().builds == 1  # group amortises the build

    def test_byte_budget_evicts_lru_plans(self, index):
        cache = SubspacePlanCache(index, capacity=16, max_bytes=1)
        cache.plan_for([0, 1])
        cache.plan_for([2, 3])  # over budget: evicts [0, 1], keeps newest
        assert len(cache) == 1
        assert [2, 3] in cache and [0, 1] not in cache
        assert cache.stats().evictions == 1

    def test_cold_builds_are_single_flighted(self, index):
        import repro.storage.plan as plan_module

        cache = SubspacePlanCache(index)
        builds = []
        original = plan_module.SubspacePlan

        class CountingPlan(original):
            def __init__(self, idx, dims):
                builds.append(tuple(int(d) for d in signature_of(dims)))
                super().__init__(idx, dims)

        plan_module.SubspacePlan = CountingPlan
        try:
            barrier = threading.Barrier(4)
            plans = []

            def touch():
                barrier.wait()
                plans.append(cache.plan_for([0, 1, 2]))

            threads = [threading.Thread(target=touch) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            plan_module.SubspacePlan = original
        assert builds == [(0, 1, 2)]  # exactly one construction
        assert all(p is plans[0] for p in plans)

    def test_concurrent_lookups_share_one_plan(self, index):
        cache = SubspacePlanCache(index)
        plans = []
        barrier = threading.Barrier(4)

        def touch():
            barrier.wait()
            plans.append(cache.plan_for([0, 1, 2]))

        threads = [threading.Thread(target=touch) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(p is plans[0] for p in plans)
        assert len(cache) == 1

    def test_pickled_index_drops_plans(self, dataset, index):
        index.plans.plan_for([0, 1])
        clone = pickle.loads(pickle.dumps(index))
        assert len(clone.plans) == 0  # rebuilt lazily in workers
        assert clone.plans.plan_for([0, 1]).signature == (0, 1)

    def test_peek_and_clear(self, index):
        cache = SubspacePlanCache(index)
        assert cache.peek([0]) is None
        plan = cache.plan_for([0])
        assert cache.peek([0]) is plan
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().builds == 1  # lifetime counters survive
