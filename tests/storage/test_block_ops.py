"""Unit tests for the storage block operations (vector fast path).

``pull_block`` / ``fetch_many`` / ``score_many`` / ``charge_many`` must be
indistinguishable — in returned values *and* in counter totals — from the
equivalent sequence of scalar calls, including the main-memory
(``cache_rows``) model where repeated fetches are free.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, Query
from repro.errors import StorageError
from repro.metrics import AccessCounters
from repro.storage import InvertedList, ListCursor, TupleStore


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(21)
    dense = rng.random((50, 6)) * (rng.random((50, 6)) < 0.6)
    return Dataset.from_dense(dense)


@pytest.fixture()
def inverted_list(dataset):
    ids, values = dataset.column(0)
    return InvertedList(0, ids, values)


class TestPullBlock:
    def test_block_equals_repeated_pulls(self, inverted_list):
        scalar_cursor, block_cursor = ListCursor(inverted_list), ListCursor(inverted_list)
        scalar_counters, block_counters = AccessCounters(), AccessCounters()
        pulled = [scalar_cursor.pull(scalar_counters) for _ in range(7)]
        ids, values = block_cursor.pull_block(7, block_counters)
        assert [(int(i), float(v)) for i, v in zip(ids, values)] == pulled
        assert block_counters.sorted_accesses == scalar_counters.sorted_accesses == 7
        assert block_cursor.position == scalar_cursor.position == 7

    def test_block_truncates_at_exhaustion(self, inverted_list):
        cursor = ListCursor(inverted_list)
        counters = AccessCounters()
        ids, _ = cursor.pull_block(inverted_list.size + 100, counters)
        assert ids.size == inverted_list.size
        assert counters.sorted_accesses == inverted_list.size
        assert cursor.exhausted

    def test_exhausted_block_is_free(self, inverted_list):
        cursor = ListCursor(inverted_list)
        counters = AccessCounters()
        cursor.pull_block(inverted_list.size, counters)
        ids, values = cursor.pull_block(5, counters)
        assert ids.size == 0 and values.size == 0
        assert counters.sorted_accesses == inverted_list.size

    def test_negative_block_size_rejected(self, inverted_list):
        with pytest.raises(StorageError):
            ListCursor(inverted_list).pull_block(-1, AccessCounters())


class TestPositionLookup:
    def test_position_of_every_entry(self, inverted_list):
        for pos in range(inverted_list.size):
            tid, _ = inverted_list.entry(pos)
            assert inverted_list.position_of(tid) == pos

    def test_position_of_absent_id(self, inverted_list):
        assert inverted_list.position_of(10**9) is None

    def test_lookup_shared_across_cursors(self, inverted_list):
        first = ListCursor(inverted_list)
        second = ListCursor(inverted_list)
        counters = AccessCounters()
        first.pull(counters)
        tid, _ = inverted_list.entry(0)
        assert first.has_passed(tid)
        assert not second.has_passed(tid)


class TestBatchFetch:
    @pytest.mark.parametrize("cache_rows", [False, True])
    def test_fetch_many_matches_scalar_fetches(self, dataset, cache_rows):
        query = Query([0, 2, 4], [0.5, 0.3, 0.9])
        ids = np.array([3, 7, 3, 12, 7])
        scalar = TupleStore(dataset, AccessCounters(), cache_rows=cache_rows)
        batch = TupleStore(dataset, AccessCounters(), cache_rows=cache_rows)
        rows = np.stack([scalar.fetch(int(t), query.dims) for t in ids])
        assert np.array_equal(batch.fetch_many(ids, query.dims), rows)
        assert batch.counters.random_accesses == scalar.counters.random_accesses

    @pytest.mark.parametrize("cache_rows", [False, True])
    def test_score_many_matches_scalar_scores(self, dataset, cache_rows):
        query = Query([1, 3, 5], [0.8, 0.4, 0.6])
        ids = np.array([0, 5, 9, 5])
        scalar = TupleStore(dataset, AccessCounters(), cache_rows=cache_rows)
        batch = TupleStore(dataset, AccessCounters(), cache_rows=cache_rows)
        expected = [scalar.score(int(t), query) for t in ids]
        assert batch.score_many(ids, query) == pytest.approx(expected, abs=0.0, rel=1e-15)
        assert batch.counters.random_accesses == scalar.counters.random_accesses

    def test_charge_many_respects_row_cache(self, dataset):
        store = TupleStore(dataset, AccessCounters(), cache_rows=True)
        store.fetch(4, np.array([0]))
        charged = store.charge_many(np.array([4, 6, 6, 8]))
        assert charged == 2  # 4 cached, 6 charged once, 8 charged once
        assert store.counters.random_accesses == 3

    def test_charge_many_without_cache_charges_every_id(self, dataset):
        store = TupleStore(dataset, AccessCounters())
        store.charge_many(np.array([1, 1, 2]))
        assert store.counters.random_accesses == 3

    def test_peek_many_is_free(self, dataset):
        store = TupleStore(dataset, AccessCounters())
        matrix = store.peek_many(np.array([0, 1]), np.array([0, 1, 2]))
        assert matrix.shape == (2, 3)
        assert store.counters.random_accesses == 0
