"""Unit tests for the durability substrate: WAL, snapshots, atlas.

The recovery *policy* (generation fallback, replay, chaos) is covered by
``tests/chaos/test_recovery.py``; this module pins the mechanisms one
level down — framing, checksums, torn-tail repair, atomic publication,
and the fingerprint the whole layer keys on.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import Dataset
from repro.errors import RecoveryError, SimulatedCrash, StorageError
from repro.service import FaultPlan, FaultSpec, RegionCache
from repro.service.service import QueryService
from repro.storage.durability import (
    ATLAS_SCOPE,
    SNAPSHOT_SCOPE,
    WAL_MAGIC,
    WAL_SCOPE,
    SnapshotStore,
    WriteAheadLog,
    dump_atlas,
    load_atlas,
    read_atlas_info,
)
from repro.storage.index import InvertedIndex
from repro.storage.mutations import Mutation, MutationBatch
from repro.topk.query import Query


def make_dataset(n=40, m=5, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


def batch(i: int) -> MutationBatch:
    return MutationBatch(
        (Mutation.update(i % 7, i % 5, 0.25 + 0.01 * i),)
    )


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------


class TestWriteAheadLog:
    def test_roundtrip_across_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for i in range(5):
                wal.append(batch(i), epoch=i + 1)
        with WriteAheadLog(path) as wal:
            assert [r.epoch for r in wal.records] == [1, 2, 3, 4, 5]
            assert wal.truncated_bytes == 0
            for i, record in enumerate(wal.records):
                (mutation,) = record.batch
                assert mutation.kind == "update"
                assert mutation.tuple_id == i % 7
                # Bit-exact float round-trip through the frame encoding.
                assert mutation.values == (0.25 + 0.01 * i,)

    def test_torn_tail_truncated_and_reported(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for i in range(3):
                wal.append(batch(i), epoch=i + 1)
        whole = path.read_bytes()
        path.write_bytes(whole[:-7])  # crash mid-append: torn last frame
        with WriteAheadLog(path) as wal:
            assert [r.epoch for r in wal.records] == [1, 2]
            assert wal.truncated_bytes > 0
            assert wal.counters.wal_truncations == 1
            # The repaired log accepts the next sequential epoch.
            wal.append(batch(9), epoch=3)
        with WriteAheadLog(path) as wal:
            assert [r.epoch for r in wal.records] == [1, 2, 3]

    def test_crc_flip_counts_checksum_rejection(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(batch(0), epoch=1)
            wal.append(batch(1), epoch=2)
        raw = bytearray(path.read_bytes())
        raw[len(WAL_MAGIC) + 10] ^= 0xFF  # bit rot inside record 1
        path.write_bytes(bytes(raw))
        with WriteAheadLog(path) as wal:
            assert wal.records == ()  # everything from the flip on is cut
            assert wal.counters.checksum_rejections == 1
            assert wal.counters.wal_truncations == 1

    def test_non_sequential_epoch_rejected(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            wal.append(batch(0), epoch=1)
            with pytest.raises(RecoveryError, match="sequential"):
                wal.append(batch(1), epoch=3)

    def test_records_after_detects_gap(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            wal.append(batch(0), epoch=5)
            wal.append(batch(1), epoch=6)
            assert [r.epoch for r in wal.records_after(4)] == [5, 6]
            assert [r.epoch for r in wal.records_after(5)] == [6]
            with pytest.raises(RecoveryError, match="gap"):
                wal.records_after(2)  # records should start at 3

    def test_prune_through(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for i in range(6):
                wal.append(batch(i), epoch=i + 1)
            assert wal.prune_through(4) == 4
            assert [r.epoch for r in wal.records] == [5, 6]
            wal.append(batch(9), epoch=7)
        with WriteAheadLog(path) as wal:
            assert [r.epoch for r in wal.records] == [5, 6, 7]

    def test_inspect_is_read_only(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(batch(0), epoch=1)
        torn = path.read_bytes()[:-3]
        path.write_bytes(torn)
        records, torn_bytes, rejected = WriteAheadLog.inspect(path)
        assert [r.epoch for r in records] == []
        assert torn_bytes > 0 and rejected == 0
        assert path.read_bytes() == torn  # untouched

    def test_torn_write_fault_recovers_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        plan = FaultPlan(
            [FaultSpec(kind="torn_write", shard=WAL_SCOPE, at=1)]
        )
        with WriteAheadLog(path, fault_plan=plan) as wal:
            wal.append(batch(0), epoch=1)
            with pytest.raises(SimulatedCrash):
                wal.append(batch(1), epoch=2)
        with WriteAheadLog(path) as wal:
            assert [r.epoch for r in wal.records] == [1]
            assert wal.counters.wal_truncations == 1

    def test_flip_byte_fault_never_silently_replays(self, tmp_path):
        path = tmp_path / "wal.log"
        plan = FaultPlan(
            [FaultSpec(kind="flip_byte", shard=WAL_SCOPE, at=1, at_byte=13)]
        )
        with WriteAheadLog(path, fault_plan=plan) as wal:
            wal.append(batch(0), epoch=1)
            wal.append(batch(1), epoch=2)  # corrupted on disk
            wal.append(batch(2), epoch=3)
        with WriteAheadLog(path) as wal:
            # The flipped record fails its CRC; it and everything after
            # are cut and the cut is reported — a prefix, never garbage.
            assert [r.epoch for r in wal.records] == [1]
            assert wal.counters.checksum_rejections == 1


# ----------------------------------------------------------------------
# Snapshot generations
# ----------------------------------------------------------------------


class TestSnapshotStore:
    def test_write_verify_load_roundtrip(self, tmp_path):
        dataset = make_dataset()
        index = InvertedIndex(dataset)
        index.apply(batch(0))
        store = SnapshotStore(tmp_path)
        store.write(dataset, starts=[0, 20], shard_epochs=[3, 4])
        (info,) = store.generations()
        assert info.valid and info.generation == 1
        assert info.manifest["epoch"] == 1
        assert info.manifest["starts"] == [0, 20]
        assert info.manifest["shard_epochs"] == [3, 4]
        loaded = store.load_dataset(info)
        assert loaded.epoch == dataset.epoch
        assert loaded.fingerprint() == dataset.fingerprint()
        for a, b in zip(loaded.csr_arrays, dataset.csr_arrays):
            assert np.array_equal(a, b)

    def test_generations_are_monotonic(self, tmp_path):
        dataset = make_dataset()
        store = SnapshotStore(tmp_path)
        store.write(dataset)
        store.write(dataset)
        assert [i.generation for i in store.generations()] == [1, 2]

    def test_corrupt_artifact_rejected(self, tmp_path):
        dataset = make_dataset()
        store = SnapshotStore(tmp_path)
        path = store.write(dataset)
        blob = bytearray((path / "dataset.npz").read_bytes())
        blob[100] ^= 0xFF
        (path / "dataset.npz").write_bytes(bytes(blob))
        (info,) = store.generations()
        assert not info.valid
        assert "mismatch" in info.problem
        assert store.counters.checksum_rejections >= 1

    def test_missing_artifact_rejected(self, tmp_path):
        dataset = make_dataset()
        store = SnapshotStore(tmp_path)
        path = store.write(dataset)
        os.unlink(path / "dataset.npz")
        (info,) = store.generations()
        assert not info.valid and "missing artifact" in info.problem

    def test_unknown_format_rejected(self, tmp_path):
        dataset = make_dataset()
        store = SnapshotStore(tmp_path)
        path = store.write(dataset)
        manifest = json.loads((path / "manifest.json").read_bytes())
        manifest["format"] = "repro-snapshot-v999"
        (path / "manifest.json").write_text(json.dumps(manifest))
        (info,) = store.generations()
        assert not info.valid and "format" in info.problem

    def test_consistent_manifest_tamper_fails_fingerprint(self, tmp_path):
        # Re-checksum a tampered artifact so the artifact check passes:
        # the content fingerprint must still fail closed.
        from repro.storage.durability import _checksums

        dataset = make_dataset()
        store = SnapshotStore(tmp_path)
        path = store.write(dataset)
        other = make_dataset(seed=99)
        import io

        indptr, indices, values = other.csr_arrays
        buffer = io.BytesIO()
        np.savez(buffer, indptr=indptr, indices=indices, values=values)
        blob = buffer.getvalue()
        (path / "dataset.npz").write_bytes(blob)
        manifest = json.loads((path / "manifest.json").read_bytes())
        manifest["artifacts"]["dataset.npz"] = _checksums(blob)
        (path / "manifest.json").write_text(json.dumps(manifest))
        (info,) = store.generations()
        assert info.valid  # checksums agree with the swapped bytes ...
        with pytest.raises(RecoveryError, match="fingerprint"):
            store.load_dataset(info)  # ... but the content hash does not

    def test_crash_rename_leaves_no_generation(self, tmp_path):
        dataset = make_dataset()
        plan = FaultPlan(
            # Artifact and manifest writes each draw once; the publish
            # rename is the scope's third write operation.
            [FaultSpec(kind="crash_rename", shard=SNAPSHOT_SCOPE, at=2)]
        )
        store = SnapshotStore(tmp_path, fault_plan=plan)
        with pytest.raises(SimulatedCrash):
            store.write(dataset)
        assert store.generations() == []  # only ignorable temp residue
        clean = SnapshotStore(tmp_path)
        clean.write(dataset)
        (info,) = clean.generations()
        assert info.valid and info.generation == 1


# ----------------------------------------------------------------------
# Dataset fingerprint
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_stable_across_identical_content(self):
        a, b = make_dataset(seed=3), make_dataset(seed=3)
        assert a.fingerprint() == b.fingerprint()

    def test_changes_with_content_and_epoch(self):
        dataset = make_dataset()
        before = dataset.fingerprint()
        InvertedIndex(dataset).apply(batch(0))
        after = dataset.fingerprint()
        assert before != after

    def test_restore_epoch_preserves_content_hash(self):
        a, b = make_dataset(seed=5), make_dataset(seed=5)
        b.restore_epoch(9)
        assert a.fingerprint() == b.fingerprint()


# ----------------------------------------------------------------------
# Region atlas
# ----------------------------------------------------------------------


def warm_cache(dataset):
    service = QueryService(InvertedIndex(dataset), executor="sequential")
    queries = [Query([0, 2], [0.7, 0.4]), Query([1, 3], [0.5, 0.9])]
    for query in queries:
        service.execute(query, k=3)
    return service, queries


class TestAtlas:
    def test_roundtrip_bit_identical(self, tmp_path):
        dataset = make_dataset()
        service, queries = warm_cache(dataset)
        originals = [service.execute(q, k=3) for q in queries]
        path = tmp_path / "atlas.bin"
        n = dump_atlas(path, service.cache, dataset)
        assert n == 2
        info = read_atlas_info(path)
        assert info.n_entries == 2
        assert info.fingerprint == dataset.fingerprint()

        fresh = RegionCache(64, track_regions=True)
        assert load_atlas(path, fresh, dataset) == 2
        restored = QueryService(
            InvertedIndex(dataset), executor="sequential"
        )
        restored.cache = fresh
        for query, original in zip(queries, originals):
            computation, tier = restored.execute_tiered(query, k=3)
            assert tier == "exact"
            assert list(computation.result.ids) == list(original.result.ids)
            assert list(computation.result.scores) == list(
                original.result.scores
            )
            for dim in computation.sequences:
                assert computation.immutable_interval(
                    dim
                ) == original.immutable_interval(dim)

    def test_fingerprint_mismatch_fails_closed(self, tmp_path):
        dataset = make_dataset()
        service, _ = warm_cache(dataset)
        path = tmp_path / "atlas.bin"
        dump_atlas(path, service.cache, dataset)
        other = make_dataset(seed=42)
        with pytest.raises(RecoveryError, match="fingerprint"):
            load_atlas(path, RegionCache(64), other)

    def test_epoch_mismatch_fails_closed(self, tmp_path):
        dataset = make_dataset()
        service, _ = warm_cache(dataset)
        path = tmp_path / "atlas.bin"
        dump_atlas(path, service.cache, dataset)
        # Identical content at a different epoch: the fingerprint agrees,
        # the version does not — still refused.
        twin = make_dataset()
        twin.restore_epoch(dataset.epoch + 1)
        with pytest.raises(RecoveryError, match="epoch"):
            load_atlas(path, RegionCache(64), twin)

    def test_corrupt_atlas_rejected(self, tmp_path):
        dataset = make_dataset()
        service, _ = warm_cache(dataset)
        path = tmp_path / "atlas.bin"
        dump_atlas(path, service.cache, dataset)
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(RecoveryError):
            read_atlas_info(path)

    def test_flip_byte_fault_caught_on_load(self, tmp_path):
        dataset = make_dataset()
        service, _ = warm_cache(dataset)
        path = tmp_path / "atlas.bin"
        plan = FaultPlan(
            [FaultSpec(kind="flip_byte", shard=ATLAS_SCOPE, at=0, at_byte=64)]
        )
        dump_atlas(path, service.cache, dataset, fault_plan=plan)
        with pytest.raises(RecoveryError):
            load_atlas(path, RegionCache(64), dataset)
