"""The peer-sync substrate: manifest, chunked reads, fail-closed sink."""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro import Dataset, Mutation, ShardedQueryService
from repro.errors import RecoveryError
from repro.service import DurabilityManager, FaultPlan, FaultSpec, has_state
from repro.storage.durability import (
    DEFAULT_SYNC_CHUNK,
    SYNC_FORMAT,
    SYNC_SCOPE,
    SyncSink,
    build_sync_manifest,
    read_sync_chunk,
)


def make_dataset(n=40, m=5, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


@pytest.fixture()
def source_dir(tmp_path):
    """A data dir with one snapshot generation, a WAL tail, and an atlas."""
    data_dir = tmp_path / "source"
    durability = DurabilityManager(data_dir, snapshot_interval=0)
    service = ShardedQueryService(
        make_dataset(), n_shards=2, durability=durability
    )
    service.snapshot_now()
    service.apply_mutations([Mutation.update(3, 1, 0.5)])
    service.apply_mutations([Mutation.update(9, 2, 0.25)])
    yield data_dir, service
    service.close()


def pull_everything(source, sink, chunk_size=DEFAULT_SYNC_CHUNK, plan=None):
    for name in sink.artifacts:
        while True:
            offset = sink.missing(name)
            chunk = read_sync_chunk(
                source, name, offset, chunk_size, fault_plan=plan
            )
            sink.add_chunk(name, offset, chunk.data, chunk.crc32)
            if chunk.eof:
                break


class TestManifest:
    def test_lists_generation_wal_and_checksums(self, source_dir):
        data_dir, service = source_dir
        manifest = build_sync_manifest(data_dir)
        assert manifest["format"] == SYNC_FORMAT
        assert manifest["epoch"] == 0  # snapshot taken before the writes
        names = list(manifest["artifacts"])
        assert "wal.log" in names
        assert any(name.startswith("snapshots/gen-") for name in names)
        # Data before metadata: manifest.json must follow its arrays.
        gen_names = [n for n in names if n.startswith("snapshots/")]
        assert gen_names[-1].endswith("manifest.json")
        for recorded in manifest["artifacts"].values():
            assert set(recorded) >= {"bytes", "crc32", "sha256"}

    def test_no_valid_generation_refused(self, tmp_path):
        with pytest.raises(RecoveryError):
            build_sync_manifest(tmp_path / "empty")

    def test_wal_size_pinned_at_manifest_time(self, source_dir):
        data_dir, service = source_dir
        manifest = build_sync_manifest(data_dir)
        pinned = manifest["artifacts"]["wal.log"]["bytes"]
        service.apply_mutations([Mutation.update(5, 3, 0.75)])
        assert (data_dir / "wal.log").stat().st_size > pinned
        # The sink stops at the pinned size and still verifies clean.
        sink = SyncSink(data_dir / ".." / "warm", manifest)
        for name in sink.artifacts:
            want = int(manifest["artifacts"][name]["bytes"])
            while sink.missing(name) < want:
                length = want - sink.missing(name)
                chunk = read_sync_chunk(
                    data_dir, name, sink.missing(name), length
                )
                sink.add_chunk(
                    name, chunk.offset, chunk.data[:length], zlib.crc32(chunk.data[:length])
                )
        assert sink.finish() > 0


class TestChunks:
    def test_chunking_reassembles_exactly(self, source_dir, tmp_path):
        data_dir, _ = source_dir
        manifest = build_sync_manifest(data_dir)
        sink = SyncSink(tmp_path / "warm", manifest)
        pull_everything(data_dir, sink, chunk_size=97)  # force many chunks
        assert sink.finish() == sum(
            int(a["bytes"]) for a in manifest["artifacts"].values()
        )
        assert sink.chunks_received > len(manifest["artifacts"])

    @pytest.mark.parametrize(
        "name",
        ["../wal.log", "/etc/passwd", "snapshots/gen-1/../x", "bogus.bin"],
    )
    def test_illegal_artifact_names_refused(self, source_dir, name):
        data_dir, _ = source_dir
        with pytest.raises(RecoveryError):
            read_sync_chunk(data_dir, name, 0, 16)


class TestSinkFailsClosed:
    def test_crc_mismatch(self, source_dir, tmp_path):
        data_dir, _ = source_dir
        manifest = build_sync_manifest(data_dir)
        sink = SyncSink(tmp_path / "warm", manifest)
        name = next(iter(sink.artifacts))
        chunk = read_sync_chunk(data_dir, name, 0, 64)
        with pytest.raises(RecoveryError, match="CRC32"):
            sink.add_chunk(name, 0, chunk.data, chunk.crc32 ^ 1)

    def test_out_of_order_chunk(self, source_dir, tmp_path):
        data_dir, _ = source_dir
        manifest = build_sync_manifest(data_dir)
        sink = SyncSink(tmp_path / "warm", manifest)
        name = next(iter(sink.artifacts))
        chunk = read_sync_chunk(data_dir, name, 64, 64)
        with pytest.raises(RecoveryError, match="out-of-order"):
            sink.add_chunk(name, 64, chunk.data, chunk.crc32)

    def test_overrun_refused(self, source_dir, tmp_path):
        data_dir, _ = source_dir
        manifest = build_sync_manifest(data_dir)
        name = "wal.log"
        manifest["artifacts"][name] = dict(
            manifest["artifacts"][name], bytes=8
        )
        sink = SyncSink(tmp_path / "warm", manifest)
        chunk = read_sync_chunk(data_dir, name, 0, 64)
        with pytest.raises(RecoveryError, match="overrun"):
            sink.add_chunk(name, 0, chunk.data, chunk.crc32)

    def test_incomplete_artifact_refused_at_finish(self, source_dir, tmp_path):
        data_dir, _ = source_dir
        manifest = build_sync_manifest(data_dir)
        sink = SyncSink(tmp_path / "warm", manifest)
        with pytest.raises(RecoveryError, match="incomplete"):
            sink.finish()
        # Nothing hit the disk: the target is not recoverable state.
        assert not has_state(tmp_path / "warm")

    @pytest.mark.parametrize("kind", ["flip_byte", "torn_write"])
    def test_injected_stream_corruption_detected(
        self, source_dir, tmp_path, kind
    ):
        data_dir, _ = source_dir
        manifest = build_sync_manifest(data_dir)
        sink = SyncSink(tmp_path / "warm", manifest)
        plan = FaultPlan(
            [FaultSpec(kind, SYNC_SCOPE, at=1, at_byte=7)]
        )
        with pytest.raises(RecoveryError):
            pull_everything(data_dir, sink, chunk_size=97, plan=plan)
        assert plan.exhausted
        assert not has_state(tmp_path / "warm")


class TestRoundTrip:
    def test_synced_dir_recovers_bit_identical(self, source_dir, tmp_path):
        data_dir, service = source_dir
        manifest = build_sync_manifest(data_dir)
        sink = SyncSink(tmp_path / "warm", manifest)
        pull_everything(data_dir, sink)
        sink.finish()
        warm = DurabilityManager(tmp_path / "warm")
        state = warm.recover()
        assert state.report.wal_records_replayed == 2
        assert (
            state.index.dataset.fingerprint()
            == service.index.dataset.fingerprint()
        )
        assert state.index.epoch == service.index.epoch == 2
        warm.close()
