"""Unit tests for inverted lists and cursors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StorageError
from repro.metrics import AccessCounters
from repro.storage import InvertedList, ListCursor


@pytest.fixture()
def posting_list() -> InvertedList:
    # Deliberately unsorted input; constructor must sort by value desc.
    return InvertedList(
        dim=3,
        ids=np.array([10, 11, 12, 13]),
        values=np.array([0.2, 0.9, 0.5, 0.9]),
    )


class TestInvertedList:
    def test_sorted_descending(self, posting_list):
        assert posting_list.values.tolist() == [0.9, 0.9, 0.5, 0.2]

    def test_ties_broken_by_ascending_id(self, posting_list):
        assert posting_list.ids.tolist() == [11, 13, 12, 10]

    def test_entry(self, posting_list):
        assert posting_list.entry(2) == (12, 0.5)

    def test_entry_out_of_range(self, posting_list):
        with pytest.raises(StorageError):
            posting_list.entry(4)

    def test_key_at_inside(self, posting_list):
        assert posting_list.key_at(0) == 0.9

    def test_key_at_past_end_is_zero(self, posting_list):
        assert posting_list.key_at(4) == 0.0
        assert posting_list.key_at(100) == 0.0

    def test_key_at_negative_rejected(self, posting_list):
        with pytest.raises(StorageError):
            posting_list.key_at(-1)

    def test_position_of(self, posting_list):
        assert posting_list.position_of(12) == 2
        assert posting_list.position_of(999) is None

    def test_size_and_len(self, posting_list):
        assert posting_list.size == 4
        assert len(posting_list) == 4

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(StorageError):
            InvertedList(0, np.array([1, 2]), np.array([0.5]))

    def test_empty_list(self):
        empty = InvertedList(0, np.array([], dtype=np.int64), np.array([]))
        assert empty.size == 0
        assert empty.key_at(0) == 0.0


class TestListCursor:
    def test_peek_does_not_consume(self, posting_list):
        cursor = ListCursor(posting_list)
        assert cursor.peek_key() == 0.9
        assert cursor.position == 0

    def test_pull_consumes_and_counts(self, posting_list):
        counters = AccessCounters()
        cursor = ListCursor(posting_list)
        assert cursor.pull(counters) == (11, 0.9)
        assert cursor.position == 1
        assert counters.sorted_accesses == 1

    def test_pull_order_matches_list(self, posting_list):
        counters = AccessCounters()
        cursor = ListCursor(posting_list)
        pulled = [cursor.pull(counters)[0] for _ in range(4)]
        assert pulled == [11, 13, 12, 10]

    def test_exhausted(self, posting_list):
        counters = AccessCounters()
        cursor = ListCursor(posting_list)
        for _ in range(4):
            cursor.pull(counters)
        assert cursor.exhausted
        assert cursor.peek_key() == 0.0
        with pytest.raises(StorageError):
            cursor.pull(counters)

    def test_has_passed(self, posting_list):
        counters = AccessCounters()
        cursor = ListCursor(posting_list)
        assert not cursor.has_passed(11)
        cursor.pull(counters)
        assert cursor.has_passed(11)
        assert not cursor.has_passed(13)

    def test_has_passed_absent_tuple(self, posting_list):
        cursor = ListCursor(posting_list)
        assert not cursor.has_passed(999)

    def test_independent_cursors(self, posting_list):
        counters = AccessCounters()
        first = ListCursor(posting_list)
        second = ListCursor(posting_list)
        first.pull(counters)
        assert second.position == 0
