"""Unit tests for :mod:`repro.storage.sharded`."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, InvertedIndex, Mutation, MutationBatch
from repro.errors import ValidationError
from repro.storage.sharded import ShardedIndex, ShardSignatureStats


def make_dataset(n=20, m=4, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset.from_dense(rng.random((n, m)) * (rng.random((n, m)) < 0.8))


class TestConstruction:
    def test_balanced_contiguous_split(self):
        sharded = ShardedIndex(make_dataset(n=10), 3)
        assert [s.start for s in sharded.shards] == [0, 3, 6]
        assert [s.n_rows for s in sharded.shards] == [3, 3, 4]
        assert sum(s.n_rows for s in sharded.shards) == 10

    def test_single_shard_covers_everything(self):
        sharded = ShardedIndex(make_dataset(n=7), 1)
        assert sharded.shards[0].n_rows == 7
        assert sharded.shards[0].start == 0

    def test_more_shards_than_rows_leaves_empty_shards(self):
        sharded = ShardedIndex(make_dataset(n=3), 5)
        assert sum(s.n_rows for s in sharded.shards) == 3
        assert any(s.n_rows == 0 for s in sharded.shards)
        # Empty shards still answer stats (all-zero markers).
        empty = next(s for s in sharded.shards if s.n_rows == 0)
        stats = empty.signature_stats((0, 2))
        assert stats.n_positive == 0 and stats.n_rows == 0
        assert stats.maxima.tolist() == [0.0, 0.0]

    def test_accepts_prebuilt_index(self):
        data = make_dataset()
        index = InvertedIndex(data)
        sharded = ShardedIndex(index, 2)
        assert sharded.index is index
        assert sharded.dataset is data

    def test_n_shards_validated(self):
        with pytest.raises(ValidationError):
            ShardedIndex(make_dataset(), 0)

    def test_custom_boundaries(self):
        sharded = ShardedIndex(make_dataset(n=10), 3, boundaries=[0, 2, 5, 10])
        assert [s.start for s in sharded.shards] == [0, 2, 5]
        assert [s.n_rows for s in sharded.shards] == [2, 3, 5]
        assert sharded.shard_of(1) == 0
        assert sharded.shard_of(2) == 1
        assert sharded.shard_of(9) == 2

    def test_boundaries_validated(self):
        data = make_dataset(n=10)
        with pytest.raises(ValidationError):  # wrong fence length
            ShardedIndex(data, 3, boundaries=[0, 5, 10])
        with pytest.raises(ValidationError):  # must start at 0
            ShardedIndex(data, 2, boundaries=[1, 5, 10])
        with pytest.raises(ValidationError):  # must end at n_tuples
            ShardedIndex(data, 2, boundaries=[0, 5, 9])
        with pytest.raises(ValidationError):  # must ascend
            ShardedIndex(data, 3, boundaries=[0, 7, 3, 10])

    def test_shard_rows_equal_global_rows(self):
        # Every shard row must equal the global row at start + local id.
        data = make_dataset(n=17)
        sharded = ShardedIndex(data, 4)
        indptr, indices, values = data.csr_arrays
        for shard in sharded.shards:
            s_indptr, s_indices, s_values = shard.dataset.csr_arrays
            for lid in range(shard.n_rows):
                gid = shard.to_global(lid)
                g = slice(indptr[gid], indptr[gid + 1])
                l = slice(s_indptr[lid], s_indptr[lid + 1])
                assert indices[g].tolist() == s_indices[l].tolist()
                assert values[g].tolist() == s_values[l].tolist()


class TestRouting:
    def test_shard_of_matches_ranges(self):
        sharded = ShardedIndex(make_dataset(n=10), 3)
        for shard in sharded.shards:
            for lid in range(shard.n_rows):
                assert sharded.shard_of(shard.to_global(lid)) == shard.shard_id

    def test_shard_of_is_open_ended_on_the_last_shard(self):
        sharded = ShardedIndex(make_dataset(n=10), 3)
        assert sharded.shard_of(999) == 2

    def test_shard_of_rejects_negative_ids(self):
        sharded = ShardedIndex(make_dataset(), 2)
        with pytest.raises(ValidationError):
            sharded.shard_of(-1)

    def test_local_global_round_trip(self):
        sharded = ShardedIndex(make_dataset(n=10), 3)
        shard = sharded.shards[1]
        assert shard.to_local(shard.to_global(2)) == 2


class TestMutationRouting:
    def test_update_touches_only_owning_shard(self):
        sharded = ShardedIndex(make_dataset(n=12), 3)
        before = sharded.shard_epochs
        sharded.apply(Mutation.update(5, 0, 0.77))  # row 5 lives in shard 1
        after = sharded.shard_epochs
        assert after[1] == before[1] + 1
        assert after[0] == before[0] and after[2] == before[2]
        assert sharded.epoch == 1

    def test_insert_appends_to_last_shard(self):
        sharded = ShardedIndex(make_dataset(n=12, m=4), 3)
        last = sharded.shards[-1]
        rows_before = last.n_rows
        applied = sharded.apply(Mutation.insert([0, 3], [0.5, 0.2]))
        assert applied[0].tuple_id == 12
        assert last.n_rows == rows_before + 1
        assert sharded.shard_of(12) == 2

    def test_delete_and_insert_in_one_batch(self):
        # A delete routed to the last shard must not disturb the insert
        # id accounting (regression: the drift guard once counted every
        # routed mutation, not just prior inserts).
        sharded = ShardedIndex(make_dataset(n=9, m=3), 2)
        batch = MutationBatch(
            (Mutation.delete(8), Mutation.insert([0, 1], [0.4, 0.6]))
        )
        applied = sharded.apply(batch)
        assert applied[1].tuple_id == 9
        assert sharded.shard_of(9) == 1

    def test_mutated_shard_rows_match_global(self):
        data = make_dataset(n=12, m=4)
        sharded = ShardedIndex(data, 3)
        sharded.apply(
            [
                Mutation.update(2, 1, 0.99),
                Mutation.delete(7),
                Mutation.insert([0, 2], [0.3, 0.8]),
            ]
        )
        indptr, indices, values = data.csr_arrays
        for shard in sharded.shards:
            s_indptr, s_indices, s_values = shard.dataset.csr_arrays
            for lid in range(shard.n_rows):
                gid = shard.to_global(lid)
                g = slice(indptr[gid], indptr[gid + 1])
                l = slice(s_indptr[lid], s_indptr[lid + 1])
                assert indices[g].tolist() == s_indices[l].tolist()
                assert values[g].tolist() == s_values[l].tolist()

    def test_drop_stale_plans_covers_global_and_shards(self):
        sharded = ShardedIndex(make_dataset(n=12), 3)
        sharded.index.plans.plan_for((0, 1))
        sharded.shards[1].index.plans.plan_for((0, 1))
        sharded.apply(Mutation.update(5, 0, 0.5))
        assert sharded.drop_stale_plans() == 2


class TestSignatureStats:
    def test_stats_bound_the_plan_block(self):
        sharded = ShardedIndex(make_dataset(n=20), 2)
        shard = sharded.shards[0]
        stats = shard.signature_stats((0, 2))
        plan = shard.index.plans.plan_for((0, 2))
        assert stats.maxima.tolist() == plan.block.max(axis=0).tolist()
        assert stats.minima.tolist() == plan.block.min(axis=0).tolist()
        assert stats.n_rows == shard.n_rows

    def test_stats_cached_per_epoch(self):
        sharded = ShardedIndex(make_dataset(n=20), 2)
        shard = sharded.shards[0]
        first = shard.signature_stats((0, 1))
        assert shard.signature_stats((0, 1)) is first
        sharded.apply(Mutation.update(0, 0, 0.123))
        refreshed = shard.signature_stats((0, 1))
        assert refreshed is not first
        assert isinstance(refreshed, ShardSignatureStats)

    def test_untouched_shard_keeps_cached_stats(self):
        sharded = ShardedIndex(make_dataset(n=20), 2)
        other = sharded.shards[1].signature_stats((0, 1))
        sharded.apply(Mutation.update(0, 0, 0.5))  # shard 0 only
        assert sharded.shards[1].signature_stats((0, 1)) is other
