"""Unit tests for the mutation subsystem's storage layer.

Covers the mutation types, versioned :class:`Dataset` behaviour (epoch,
overlay rows, incremental column patching, compaction), incremental
:class:`InvertedList` maintenance (sorted insert, lazy tombstones,
compaction threshold), :meth:`InvertedIndex.apply`, epoch-aware plan
caching, and the pickle round-trip regression (plan-cache bounds and the
epoch field must survive).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import (
    Dataset,
    ImmutableRegionEngine,
    InvertedIndex,
    Mutation,
    MutationBatch,
    Query,
)
from repro.errors import DatasetError, StorageError
from repro.metrics.counters import AccessCounters
from repro.storage import inverted_list as inverted_list_module
from repro.storage.tuple_store import TupleStore

ROWS = [
    [0.8, 0.32, 0.0],
    [0.7, 0.5, 0.2],
    [0.1, 0.8, 0.0],
    [0.1, 0.6, 0.9],
]


@pytest.fixture()
def dataset() -> Dataset:
    return Dataset.from_dense(ROWS)


class TestMutationTypes:
    def test_insert_sorts_dims(self):
        mutation = Mutation.insert([2, 0], [0.3, 0.9])
        assert mutation.dims == (0, 2)
        assert mutation.values == (0.9, 0.3)

    def test_insert_rejects_duplicate_dims(self):
        with pytest.raises(DatasetError):
            Mutation.insert([1, 1], [0.2, 0.3])

    def test_batch_rejects_empty_and_non_mutations(self):
        with pytest.raises(Exception):
            MutationBatch(())
        with pytest.raises(DatasetError):
            MutationBatch(("not a mutation",))

    def test_unknown_kind_rejected(self):
        with pytest.raises(DatasetError):
            Mutation(kind="upsert")

    def test_applied_mutation_coordinate_changes(self, dataset):
        (delta,) = dataset.apply(MutationBatch((Mutation.update(1, 1, 0.55),)))
        assert list(delta.coordinate_changes()) == [(1, 0.5, 0.55)]
        assert delta.coords_at(np.array([0, 1]), new=False).tolist() == [0.7, 0.5]
        assert delta.coords_at(np.array([0, 1]), new=True).tolist() == [0.7, 0.55]


class TestVersionedDataset:
    def test_epoch_bumps_once_per_batch(self, dataset):
        assert dataset.epoch == 0 and not dataset.is_mutated
        dataset.apply(
            MutationBatch((Mutation.update(0, 0, 0.81), Mutation.delete(2)))
        )
        assert dataset.epoch == 1 and dataset.is_mutated

    def test_update_and_zero_removal(self, dataset):
        assert dataset.nnz == 10
        dataset.apply(MutationBatch((Mutation.update(1, 2, 0.0),)))
        assert dataset.value(1, 2) == 0.0
        assert dataset.nnz == 9
        dataset.apply(MutationBatch((Mutation.update(0, 2, 0.25),)))
        assert dataset.value(0, 2) == 0.25
        assert dataset.nnz == 10

    def test_delete_empties_row_and_keeps_ids(self, dataset):
        dataset.apply(MutationBatch((Mutation.delete(2),)))
        dims, values = dataset.row(2)
        assert dims.size == 0 and values.size == 0
        assert dataset.n_tuples == 4
        assert dataset.deleted_ids == frozenset({2})
        with pytest.raises(DatasetError):
            dataset.apply(MutationBatch((Mutation.delete(2),)))
        with pytest.raises(DatasetError):
            dataset.apply(MutationBatch((Mutation.update(2, 0, 0.5),)))

    def test_insert_assigns_next_id(self, dataset):
        (delta,) = dataset.apply(
            MutationBatch((Mutation.insert([0, 2], [0.4, 0.0]),))
        )
        assert delta.tuple_id == 4
        assert dataset.n_tuples == 5
        # The zero value is dropped (sparse model).
        assert dataset.row(4)[0].tolist() == [0]

    def test_batches_are_atomic(self, dataset):
        """A rejected batch leaves rows, columns, lists, and epoch untouched."""
        index = InvertedIndex(dataset)
        index.warm(range(3))
        dataset.column(0)  # cache a column so patching would be observable
        bad_batches = [
            MutationBatch((Mutation.update(0, 0, 0.05), Mutation.delete(99))),
            MutationBatch((Mutation.update(0, 0, 0.05), Mutation.update(1, 0, 2.0))),
            MutationBatch((Mutation.delete(2), Mutation.update(2, 1, 0.5))),
            MutationBatch((Mutation.update(0, 0, 0.05), Mutation(kind="update", tuple_id=1))),
        ]
        for batch in bad_batches:
            with pytest.raises(DatasetError):
                index.apply(batch)
        assert dataset.epoch == 0 and index.epoch == 0
        assert dataset.value(0, 0) == 0.8  # first mutation was NOT applied
        assert dataset.column(0)[1].tolist() == [0.8, 0.7, 0.1, 0.1]
        assert index.list_for(0).entry(0) == (0, 0.8)
        assert not dataset.deleted_ids

    def test_out_of_range_rejected(self, dataset):
        for bad in (
            Mutation.delete(9),
            Mutation.update(0, 7, 0.5),
            Mutation.update(0, 0, 1.5),
            Mutation.insert([9], [0.5]),
        ):
            with pytest.raises(DatasetError):
                dataset.apply(MutationBatch((bad,)))

    def test_cached_columns_are_patched(self, dataset):
        before_ids, _ = dataset.column(1)  # cache it
        assert before_ids.tolist() == [0, 1, 2, 3]
        dataset.apply(
            MutationBatch(
                (
                    Mutation.update(0, 1, 0.0),
                    Mutation.insert([1], [0.77]),
                    Mutation.update(3, 1, 0.61),
                )
            )
        )
        ids, values = dataset.column(1)
        assert ids.tolist() == [1, 2, 3, 4]
        assert values.tolist() == [0.5, 0.8, 0.61, 0.77]
        # A cold column computed through the overlay agrees.
        fresh_ids, fresh_values = dataset.compacted().column(1)
        assert np.array_equal(ids, fresh_ids)
        assert np.array_equal(values, fresh_values)

    def test_compacted_preserves_live_state(self, dataset):
        dataset.apply(
            MutationBatch(
                (Mutation.delete(0), Mutation.insert([0, 1], [0.2, 0.9]))
            )
        )
        compacted = dataset.compacted()
        assert compacted.n_tuples == dataset.n_tuples
        assert compacted.epoch == 0
        assert np.array_equal(compacted.to_dense(), dataset.to_dense())

    def test_csr_arrays_reflect_mutations(self, dataset):
        dataset.apply(MutationBatch((Mutation.update(0, 0, 0.44),)))
        indptr, indices, values = dataset.csr_arrays
        assert indptr[-1] == dataset.nnz
        rebuilt = Dataset(indptr.copy(), indices.copy(), values.copy(), 3)
        assert np.array_equal(rebuilt.to_dense(), dataset.to_dense())


class TestIncrementalInvertedList:
    def test_sorted_insert_and_tombstone_match_fresh_build(self, dataset):
        index = InvertedIndex(dataset)
        index.warm(range(3))
        index.apply(
            MutationBatch(
                (
                    Mutation.update(2, 0, 0.75),
                    Mutation.delete(1),
                    Mutation.insert([0, 1], [0.1, 0.45]),
                )
            )
        )
        fresh = InvertedIndex(dataset.compacted())
        for dim in range(3):
            patched, built = index.list_for(dim), fresh.list_for(dim)
            assert np.array_equal(patched.ids, built.ids)
            assert np.array_equal(patched.values, built.values)

    def test_tombstones_are_lazy_until_threshold(self, dataset, monkeypatch):
        monkeypatch.setattr(inverted_list_module, "_COMPACT_MIN", 3)
        index = InvertedIndex(dataset)
        inverted = index.list_for(1)
        index.apply(MutationBatch((Mutation.update(0, 1, 0.0),)))
        assert inverted.n_tombstones == 1  # lazy: slot still allocated
        assert inverted.size == 3
        assert inverted.ids.tolist() == [2, 3, 1]  # live view skips the dead slot
        index.apply(MutationBatch((Mutation.update(2, 1, 0.0),)))
        assert inverted.n_tombstones == 2
        index.apply(MutationBatch((Mutation.update(3, 1, 0.0),)))
        # Third tombstone crosses the threshold: physical compaction.
        assert inverted.n_tombstones == 0
        assert inverted.ids.tolist() == [1]

    def test_value_ties_break_by_id(self):
        data = Dataset.from_dense([[0.5], [0.3], [0.5]])
        index = InvertedIndex(data)
        index.apply(MutationBatch((Mutation.update(1, 0, 0.5),)))
        assert index.list_for(0).ids.tolist() == [0, 1, 2]

    def test_remove_missing_entry_raises(self, dataset):
        inverted = InvertedIndex(dataset).list_for(0)
        with pytest.raises(StorageError):
            inverted.remove_entry(0, 0.123)


class TestInvertedIndexApply:
    def test_epoch_tracks_dataset(self, dataset):
        index = InvertedIndex(dataset)
        assert index.epoch == 0
        index.apply(MutationBatch((Mutation.update(0, 0, 0.5),)))
        assert index.epoch == dataset.epoch == 1

    def test_direct_dataset_mutation_is_detected(self, dataset):
        index = InvertedIndex(dataset)
        index.warm([0])
        dataset.apply(MutationBatch((Mutation.update(0, 0, 0.5),)))
        with pytest.raises(StorageError):
            index.apply(MutationBatch((Mutation.update(0, 0, 0.6),)))
        index.refresh()
        assert index.epoch == dataset.epoch
        assert index.built_dimensions() == []
        index.apply(MutationBatch((Mutation.update(0, 0, 0.6),)))

    def test_unbuilt_lists_build_from_mutated_state(self, dataset):
        index = InvertedIndex(dataset)  # nothing warmed
        index.apply(MutationBatch((Mutation.update(2, 1, 0.95),)))
        assert index.list_for(1).entry(0) == (2, 0.95)

    def test_plan_cache_drops_stale_plans(self, dataset):
        index = InvertedIndex(dataset)
        plan = index.plans.plan_for([0, 1])
        assert plan.epoch == 0
        index.apply(MutationBatch((Mutation.update(0, 0, 0.5),)))
        assert index.plans.peek([0, 1]) is None  # dropped on read
        rebuilt = index.plans.plan_for([0, 1])
        assert rebuilt.epoch == 1
        assert rebuilt.block[0, 0] == 0.5
        assert index.plans.stats().stale_drops == 1

    def test_plan_cache_drop_stale_eagerly(self, dataset):
        index = InvertedIndex(dataset)
        index.plans.plan_for([0, 1])
        index.plans.plan_for([1, 2])
        index.apply(MutationBatch((Mutation.update(0, 0, 0.5),)))
        assert index.plans.drop_stale() == 2
        assert len(index.plans) == 0


class TestTupleStoreVersioning:
    def test_epoch_and_row_cache_drop(self, dataset):
        counters = AccessCounters()
        store = TupleStore(dataset, counters, cache_rows=True)
        store.fetch(0, np.array([0, 1]))
        assert counters.random_accesses == 1
        store.fetch(0, np.array([0, 1]))
        assert counters.random_accesses == 1  # cached row is free
        store.apply(MutationBatch((Mutation.update(0, 0, 0.5),)))
        assert store.epoch == 1
        coords = store.fetch(0, np.array([0, 1]))
        assert counters.random_accesses == 2  # mutated row re-read
        assert coords.tolist() == [0.5, 0.32]


class TestPickleRoundTrip:
    """Regression: pickling must keep the plan-cache bounds and epoch."""

    def test_round_trip_preserves_epoch_lists_and_plan_bounds(self, dataset):
        index = InvertedIndex(dataset)
        # Customise the plan-cache bounds, then force the cache to exist.
        index._plans = None
        cache = index.plans
        cache.capacity = 7
        cache.max_bytes = 123456
        index.plans.plan_for([0, 1])
        index.warm(range(3))
        index.apply(
            MutationBatch(
                (Mutation.update(1, 0, 0.66), Mutation.delete(3))
            )
        )

        clone = pickle.loads(pickle.dumps(index))
        assert clone.epoch == index.epoch == 1
        # Plan-cache bounds survive; the heavyweight plans themselves
        # are rebuilt lazily by the worker.
        assert clone.plans.capacity == 7
        assert clone.plans.max_bytes == 123456
        assert len(clone.plans) == 0
        for dim in range(3):
            assert np.array_equal(
                clone.list_for(dim).ids, index.list_for(dim).ids
            )
            assert np.array_equal(
                clone.list_for(dim).values, index.list_for(dim).values
            )
        # The clone answers queries identically (including mutations).
        query = Query([0, 1], [0.8, 0.5])
        ours = ImmutableRegionEngine(index).compute(query, 2)
        theirs = ImmutableRegionEngine(clone).compute(query, 2)
        assert ours.result.ids == theirs.result.ids
        assert ours.region(0).weight_interval == theirs.region(0).weight_interval
        assert theirs.epoch == 1

    def test_default_plan_bounds_round_trip_when_cache_untouched(self, dataset):
        index = InvertedIndex(dataset)
        clone = pickle.loads(pickle.dumps(index))
        # No cache existed, so none is reconstructed until first use.
        assert clone.__dict__["_plans"] is None
        assert clone.plans is not None  # lazily created as before
