"""Unit tests for the inverted index."""

from __future__ import annotations

import pytest

from repro import Dataset, InvertedIndex
from repro.errors import StorageError


@pytest.fixture()
def index() -> InvertedIndex:
    data = Dataset.from_dense(
        [
            [0.8, 0.32, 0.0],
            [0.7, 0.5, 0.0],
            [0.1, 0.8, 0.0],
            [0.1, 0.6, 0.0],
        ]
    )
    return InvertedIndex(data)


class TestListBuilding:
    def test_list_matches_figure1(self, index):
        """L1 from the paper's Figure 1: d1, d2, d3, d4 by value desc."""
        l1 = index.list_for(0)
        assert l1.ids.tolist() == [0, 1, 2, 3]
        assert l1.values.tolist() == [0.8, 0.7, 0.1, 0.1]
        l2 = index.list_for(1)
        assert l2.ids.tolist() == [2, 3, 1, 0]
        assert l2.values.tolist() == [0.8, 0.6, 0.5, 0.32]

    def test_lists_are_cached(self, index):
        assert index.list_for(0) is index.list_for(0)

    def test_lazy_building(self, index):
        assert index.built_dimensions() == []
        index.list_for(1)
        assert index.built_dimensions() == [1]

    def test_empty_dimension_gives_empty_list(self, index):
        assert index.list_for(2).size == 0

    def test_out_of_range_dim(self, index):
        with pytest.raises(StorageError):
            index.list_for(3)
        with pytest.raises(StorageError):
            index.list_for(-1)


class _CountingLock:
    """A lock wrapper counting acquisitions (context-manager uses)."""

    def __init__(self) -> None:
        import threading

        self._lock = threading.Lock()
        self.acquisitions = 0

    def __enter__(self):
        self.acquisitions += 1
        return self._lock.__enter__()

    def __exit__(self, *exc_info):
        return self._lock.__exit__(*exc_info)


class TestWarmPathLocking:
    def test_warm_list_lookup_never_takes_the_build_lock(self, index):
        counting = _CountingLock()
        index._build_lock = counting
        index.list_for(0)
        assert counting.acquisitions == 1  # the one cold build
        for _ in range(5):
            index.list_for(0)
            index.cursors_for([0])
        assert counting.acquisitions == 1  # warm traffic is lock-free

    def test_warm_cursors_for_multiple_dims_lock_free(self, index):
        index.warm([0, 1])
        counting = _CountingLock()
        index._build_lock = counting
        cursors = index.cursors_for([0, 1])
        assert set(cursors) == {0, 1}
        assert counting.acquisitions == 0

    def test_cold_build_still_validates_range(self, index):
        with pytest.raises(StorageError):
            index.list_for(99)


class TestCursors:
    def test_cursors_for_returns_fresh_state(self, index):
        from repro.metrics import AccessCounters

        counters = AccessCounters()
        cursors = index.cursors_for([0, 1])
        assert set(cursors) == {0, 1}
        cursors[0].pull(counters)
        fresh = index.cursors_for([0])
        assert fresh[0].position == 0

    def test_n_dims(self, index):
        assert index.n_dims == 3
