#!/usr/bin/env python
"""Replication smoke: peer warmup over the wire, primary kill mid-loadtest.

End-to-end CI gate for the replicated serving stack, orchestrating real
``repro`` processes over real TCP:

1. snapshot a seeded dataset into data-dir A and boot gateway A from it
   (an in-process 2-replica set behind one front door);
2. boot gateway B with ``--join`` pointing at A — B's data dir is
   assembled purely from A's sync stream (manifest + CRC-verified
   chunks), never from A's disk;
3. assert A and B answer a fixed query panel **bit-identically**
   (ids, scores, immutable intervals, epoch);
4. replay an open-loop load schedule against both endpoints and
   SIGKILL A mid-replay — the driver must ride through on B and the
   SLO gate (p99 + attainment) must still pass;
5. assert B's post-failover answers are bit-identical to the pre-kill
   panel.

Exits non-zero on the first violated invariant.  The scratch data dirs
are left in place (CI uploads them as a fixture on failure).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
PYTHON = sys.executable

QUERY_PANEL = [
    {"dims": [0, 2, 4], "weights": [0.7, 0.3, 0.5]},
    {"dims": [1, 3], "weights": [0.9, 0.2]},
    {"dims": [0, 1, 5], "weights": [0.4, 0.6, 0.8]},
]


def env():
    merged = dict(os.environ)
    src = str(ROOT / "src")
    merged["PYTHONPATH"] = (
        src + os.pathsep + merged["PYTHONPATH"]
        if merged.get("PYTHONPATH")
        else src
    )
    return merged


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def request(port: int, payload: dict, timeout: float = 10.0) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as conn:
        conn.sendall(json.dumps(payload).encode() + b"\n")
        line = conn.makefile("rb").readline()
    if not line:
        raise ConnectionError("connection closed before reply")
    return json.loads(line)


def wait_ready(port: int, proc, what: str, deadline: float = 60.0) -> dict:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if proc.poll() is not None:
            fail(f"{what} exited with {proc.returncode} before serving")
        try:
            return request(port, {"op": "ping"}, timeout=2.0)
        except OSError:
            time.sleep(0.2)
    fail(f"{what} never became ready on port {port}")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def answer_panel(port: int) -> list:
    """The full bit-identity surface of the fixed query panel."""
    panel = []
    for query in QUERY_PANEL:
        reply = request(port, {"op": "query", **query, "k": 5})
        if not reply.get("ok"):
            fail(f"query refused on port {port}: {reply}")
        panel.append(
            {
                "result": reply["result"],
                "regions": reply["regions"],
                "epoch": reply["epoch"],
            }
        )
    return panel


def main() -> int:
    work = Path("replication-smoke")
    work.mkdir(exist_ok=True)
    dir_a, dir_b = work / "node-a", work / "node-b"
    port_a, port_b = free_port(), free_port()
    procs = []
    try:
        print("== seed durable state for node A")
        subprocess.run(
            [
                PYTHON, "-m", "repro.cli", "snapshot",
                "--data-dir", str(dir_a), "--family", "st",
                "--seed", "7", "--shards", "2",
            ],
            env=env(), check=True,
        )

        print(f"== boot node A (2-replica set) on :{port_a}")
        proc_a = subprocess.Popen(
            [
                PYTHON, "-m", "repro.cli", "serve",
                "--data-dir", str(dir_a), "--port", str(port_a),
                "--shards", "2", "--replicas", "2",
                "--probe-interval", "0.25", "--seed", "7",
            ],
            env=env(),
        )
        procs.append(proc_a)
        ping_a = wait_ready(port_a, proc_a, "node A")

        print(f"== boot node B on :{port_b}, warmed over the wire from A")
        proc_b = subprocess.Popen(
            [
                PYTHON, "-m", "repro.cli", "serve",
                "--data-dir", str(dir_b), "--port", str(port_b),
                "--shards", "2", "--seed", "7",
                "--join", f"127.0.0.1:{port_a}",
            ],
            env=env(),
        )
        procs.append(proc_b)
        ping_b = wait_ready(port_b, proc_b, "node B")
        if ping_b.get("epoch") != ping_a.get("epoch"):
            fail(
                f"joined replica epoch {ping_b.get('epoch')} != "
                f"peer epoch {ping_a.get('epoch')}"
            )

        print("== verify A and B answer the query panel bit-identically")
        panel_a = answer_panel(port_a)
        panel_b = answer_panel(port_b)
        if panel_a != panel_b:
            fail("warmed replica diverges from its peer on the query panel")
        print(f"   {len(panel_a)} answers bit-identical at epoch "
              f"{panel_a[0]['epoch']}")

        print("== open-loop replay against both endpoints; kill A mid-run")
        loadtest = subprocess.Popen(
            [
                PYTHON, "-m", "repro.cli", "loadtest",
                "--family", "st", "--seed", "7",
                "--gateway", f"127.0.0.1:{port_a},127.0.0.1:{port_b}",
                "--rates", "40", "--duration", "8", "--process", "fixed",
                "--deadline-ms", "1000",
                "--check", "--slo-p99-ms", "500", "--slo-attainment", "0.90",
                "--out", str(work / "BENCH_slo.json"),
            ],
            env=env(),
        )
        procs.append(loadtest)
        time.sleep(3.0)
        print("   SIGKILL node A (simulated primary death)")
        proc_a.kill()
        proc_a.wait(timeout=30)
        if loadtest.wait(timeout=300) != 0:
            fail("SLO gate failed across the primary kill")

        print("== verify B's post-failover answers are bit-identical")
        panel_after = answer_panel(port_b)
        if panel_after != panel_b:
            fail("post-failover answers diverge from the pre-kill panel")

        report = json.loads((work / "BENCH_slo.json").read_text())
        step = report["steps"][0]
        print(
            f"OK: survived primary kill — attainment "
            f"{step['attainment']:.4f}, p99 "
            f"{step['latency_ms']['p99']:.1f} ms, answers bit-identical"
        )
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
